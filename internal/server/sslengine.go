package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"qtls/internal/minitls"
)

// This file implements the SSL Engine Framework configuration surface the
// QTLS artifact exposes in the Nginx conf file (§A.7): which engine to
// use, which algorithms to offload, and the offload/notify/poll mode
// switches, e.g.
//
//	worker_processes 8;
//	ssl_engine {
//	    use qat_engine;
//	    default_algorithm RSA,EC,DH,PKEY_CRYPTO;
//	    qat_engine {
//	        qat_offload_mode async;
//	        qat_notify_mode poll;
//	        qat_poll_mode heuristic;
//	        qat_heuristic_poll_asym_threshold 64;
//	        qat_heuristic_poll_sym_threshold 32;
//	    }
//	}
//
// The threshold directives override the paper defaults, which are defined
// once in internal/offload and applied when a directive is absent.
//
// ParseEngineConfig understands this dialect (plus worker_processes and a
// qat_poll_interval extension) and produces the equivalent RunConfig and
// engine offload selection.

// EngineSettings is the result of parsing an ssl_engine configuration.
type EngineSettings struct {
	// Workers is worker_processes (0 = unset).
	Workers int
	// Run is the equivalent run configuration.
	Run RunConfig
	// Offload lists the offloaded op kinds (nil = engine default).
	Offload []minitls.OpKind
}

// ParseEngineConfig parses the SSL Engine Framework dialect. Unknown
// directives are rejected (like nginx would).
func ParseEngineConfig(text string) (*EngineSettings, error) {
	p := &confParser{toks: tokenizeConf(text)}
	s := &EngineSettings{
		Run: RunConfig{
			Name:      "custom",
			AsyncMode: minitls.AsyncModeOff,
		},
	}
	useQATEngine := false
	offloadMode := "sync"
	pollMode := "timer"
	notifyMode := "poll"

	for !p.done() {
		word, err := p.word()
		if err != nil {
			return nil, err
		}
		switch word {
		case "worker_processes":
			v, err := p.intArg(word)
			if err != nil {
				return nil, err
			}
			s.Workers = v
		case "ssl_engine":
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			for {
				if p.peek() == "}" {
					p.word()
					break
				}
				inner, err := p.word()
				if err != nil {
					return nil, err
				}
				switch inner {
				case "use":
					name, err := p.strArg(inner)
					if err != nil {
						return nil, err
					}
					if name != "qat_engine" {
						return nil, fmt.Errorf("ssl_engine: unknown engine %q", name)
					}
					useQATEngine = true
				case "default_algorithm":
					algs, err := p.strArg(inner)
					if err != nil {
						return nil, err
					}
					kinds, err := parseAlgorithms(algs)
					if err != nil {
						return nil, err
					}
					s.Offload = kinds
					s.Run.Offload = kinds
				case "qat_engine":
					if err := p.expect("{"); err != nil {
						return nil, err
					}
					for {
						if p.peek() == "}" {
							p.word()
							break
						}
						dir, err := p.word()
						if err != nil {
							return nil, err
						}
						switch dir {
						case "qat_offload_mode":
							if offloadMode, err = p.strArg(dir); err != nil {
								return nil, err
							}
						case "qat_notify_mode":
							if notifyMode, err = p.strArg(dir); err != nil {
								return nil, err
							}
						case "qat_poll_mode":
							if pollMode, err = p.strArg(dir); err != nil {
								return nil, err
							}
						case "qat_heuristic_poll_asym_threshold":
							if s.Run.AsymThreshold, err = p.intArg(dir); err != nil {
								return nil, err
							}
						case "qat_heuristic_poll_sym_threshold":
							if s.Run.SymThreshold, err = p.intArg(dir); err != nil {
								return nil, err
							}
						case "qat_poll_interval":
							str, err := p.strArg(dir)
							if err != nil {
								return nil, err
							}
							d, err := time.ParseDuration(str)
							if err != nil {
								return nil, fmt.Errorf("%s: %v", dir, err)
							}
							s.Run.PollInterval = d
						default:
							return nil, fmt.Errorf("qat_engine: unknown directive %q", dir)
						}
					}
				default:
					return nil, fmt.Errorf("ssl_engine: unknown directive %q", inner)
				}
			}
		default:
			return nil, fmt.Errorf("unknown directive %q", word)
		}
	}

	// Assemble the run configuration from the mode switches.
	if !useQATEngine {
		s.Run = ConfigSW
		s.Run.Name = "SW"
		return s, nil
	}
	s.Run.UseQAT = true
	switch offloadMode {
	case "sync":
		s.Run.AsyncMode = minitls.AsyncModeOff
		s.Run.Polling = PollNone
		s.Run.Name = "QAT+S"
		return s, nil
	case "async":
		s.Run.AsyncMode = minitls.AsyncModeFiber
	case "async_stack":
		s.Run.AsyncMode = minitls.AsyncModeStack
	default:
		return nil, fmt.Errorf("qat_offload_mode: unknown mode %q", offloadMode)
	}
	switch pollMode {
	case "timer":
		s.Run.Polling = PollTimer
	case "heuristic":
		s.Run.Polling = PollHeuristic
	default:
		return nil, fmt.Errorf("qat_poll_mode: unknown mode %q", pollMode)
	}
	switch notifyMode {
	case "poll", "event_fd", "fd":
		// "poll" in the artifact config means events are discovered by
		// polling and delivered through the wait-ctx notification; map
		// poll→kernel-bypass, event_fd/fd→FD.
		if notifyMode == "poll" {
			s.Run.Notify = NotifyKernelBypass
		} else {
			s.Run.Notify = NotifyFD
		}
	default:
		return nil, fmt.Errorf("qat_notify_mode: unknown mode %q", notifyMode)
	}
	switch {
	case s.Run.Polling == PollHeuristic && s.Run.Notify == NotifyKernelBypass:
		s.Run.Name = "QTLS"
	case s.Run.Polling == PollHeuristic:
		s.Run.Name = "QAT+AH"
	default:
		s.Run.Name = "QAT+A"
	}
	return s, nil
}

// parseAlgorithms maps the artifact's default_algorithm names onto op
// kinds. RSA→RSA; EC→ECDSA+ECDH; DH→ECDH; PKEY_CRYPTO→PRF;
// CIPHERS→record cipher; ALL→everything offloadable.
func parseAlgorithms(list string) ([]minitls.OpKind, error) {
	set := map[minitls.OpKind]bool{}
	for _, name := range strings.Split(list, ",") {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "RSA":
			set[minitls.KindRSA] = true
		case "EC", "ECDSA", "ECDH":
			set[minitls.KindECDSA] = true
			set[minitls.KindECDH] = true
		case "DH":
			set[minitls.KindECDH] = true
		case "PKEY_CRYPTO", "PRF":
			set[minitls.KindPRF] = true
		case "CIPHERS", "CIPHER":
			set[minitls.KindCipher] = true
		case "ALL":
			for _, k := range []minitls.OpKind{minitls.KindRSA, minitls.KindECDSA,
				minitls.KindECDH, minitls.KindPRF, minitls.KindCipher} {
				set[k] = true
			}
		case "":
			// tolerate trailing commas
		default:
			return nil, fmt.Errorf("default_algorithm: unknown algorithm %q", name)
		}
	}
	var kinds []minitls.OpKind
	for _, k := range []minitls.OpKind{minitls.KindRSA, minitls.KindECDSA,
		minitls.KindECDH, minitls.KindPRF, minitls.KindCipher} {
		if set[k] {
			kinds = append(kinds, k)
		}
	}
	return kinds, nil
}

// --- tiny nginx-style tokenizer/parser -------------------------------------

type confParser struct {
	toks []string
	pos  int
}

func tokenizeConf(text string) []string {
	var toks []string
	lines := strings.Split(text, "\n")
	for _, line := range lines {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "{", " { ")
		line = strings.ReplaceAll(line, "}", " } ")
		line = strings.ReplaceAll(line, ";", " ; ")
		toks = append(toks, strings.Fields(line)...)
	}
	return toks
}

func (p *confParser) done() bool { return p.pos >= len(p.toks) }

func (p *confParser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *confParser) word() (string, error) {
	if p.done() {
		return "", fmt.Errorf("conf: unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *confParser) expect(tok string) error {
	got, err := p.word()
	if err != nil {
		return err
	}
	if got != tok {
		return fmt.Errorf("conf: expected %q, got %q", tok, got)
	}
	return nil
}

// strArg reads one argument terminated by ';'.
func (p *confParser) strArg(directive string) (string, error) {
	v, err := p.word()
	if err != nil {
		return "", fmt.Errorf("%s: missing argument", directive)
	}
	if v == ";" || v == "{" || v == "}" {
		return "", fmt.Errorf("%s: missing argument", directive)
	}
	if err := p.expect(";"); err != nil {
		return "", fmt.Errorf("%s: %v", directive, err)
	}
	return v, nil
}

func (p *confParser) intArg(directive string) (int, error) {
	v, err := p.strArg(directive)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", directive, err)
	}
	return n, nil
}
