//go:build linux

package server

import (
	"bufio"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/loadgen"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// lcReadResponse reads one HTTP response (headers + body) off a buffered
// TLS reader.
func lcReadResponse(t *testing.T, br *bufio.Reader) {
	t.Helper()
	cl := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
			cl = atoiOr(strings.TrimSpace(v), -1)
		}
	}
	if cl < 0 {
		t.Fatal("response without Content-Length")
	}
	if _, err := io.CopyN(io.Discard, br, int64(cl)); err != nil {
		t.Fatalf("reading body: %v", err)
	}
}

// A client that connects and never speaks is cut by the handshake
// deadline — the accept-time deadline, never refreshed.
func TestHandshakeDeadlineExpiry(t *testing.T) {
	run := ConfigSW
	run.Deadlines = offload.DeadlinePolicy{Handshake: 80 * time.Millisecond, Tick: 10 * time.Millisecond}
	srv, _ := startServer(t, run, 1, nil)

	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	_, err = raw.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("silent connection not closed")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server never closed the silent connection: %v", err)
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("closed after %v — before the 80ms handshake deadline", elapsed)
	}
	if !waitUntil(t, time.Second, func() bool {
		return srv.Stats().DeadlineExpired[offload.DeadlineHandshake] >= 1
	}) {
		t.Fatalf("no handshake deadline expiry recorded: %+v", srv.Stats())
	}
}

// An idle keepalive connection is closed with a TLS close-notify — an
// orderly server-initiated close, not a cut.
func TestKeepaliveDeadlineClosesGracefully(t *testing.T) {
	run := ConfigSW
	run.Deadlines = offload.DeadlinePolicy{Keepalive: 120 * time.Millisecond, Tick: 10 * time.Millisecond}
	srv, _ := startServer(t, run, 1, nil)

	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(readerFor(tc))
	if _, err := tc.Write([]byte("GET /64 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	lcReadResponse(t, br)

	// Idle now; the keepalive deadline should close-notify us.
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("idle read = %v, want io.EOF after close-notify", err)
	}
	if !tc.CloseNotifyReceived() {
		t.Fatal("no close-notify before EOF: keepalive expiry was not graceful")
	}
	st := srv.Stats()
	if st.DeadlineExpired[offload.DeadlineKeepalive] < 1 {
		t.Fatalf("no keepalive expiry recorded: %+v", st)
	}
}

// A connection parked on a stalled offload with no op deadline is rescued
// by its lifecycle deadline: the close cancels through the engine, so the
// paused fiber exits and the inflight accounting returns to zero.
func TestHandshakeDeadlineCancelsStalledOffload(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 2,
		RingCapacity:       32,
		Injector: fault.NewInjector(1, fault.Rule{
			Kind:     fault.Stall,
			Endpoint: fault.AnyEndpoint,
			Op:       int(qat.OpRSA),
			P:        1,
		}),
	})
	t.Cleanup(dev.Close)
	run := ConfigQTLS
	// No OpTimeout: the connection's handshake deadline is the only rescue.
	run.OpTimeout = 0
	run.Deadlines = offload.DeadlinePolicy{Handshake: 100 * time.Millisecond, Tick: 10 * time.Millisecond}
	reg := metrics.NewRegistry()
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(1 << 20),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(5 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err == nil {
		t.Fatal("handshake completed against a fully stalled RSA engine with no op deadline")
	}

	eng := srv.Workers()[0].Engine()
	if !waitUntil(t, 2*time.Second, func() bool { return eng.Stats().Cancels >= 1 }) {
		t.Fatalf("engine recorded no cancels: %+v", eng.Stats())
	}
	if !waitUntil(t, 2*time.Second, func() bool { return eng.InflightTotal() == 0 }) {
		t.Fatalf("inflight did not settle after cancel: %d", eng.InflightTotal())
	}
	st := srv.Stats()
	if st.DeadlineExpired[offload.DeadlineHandshake] < 1 {
		t.Fatalf("no handshake expiry recorded: %+v", st)
	}
	if !waitUntil(t, time.Second, func() bool { return reg.Snapshot()["qat_op_cancels"] >= 1 }) {
		t.Fatalf("qat_op_cancels not exported: %v", reg.Snapshot())
	}
}

// The ISSUE's overload acceptance scenario: every RSA offload stalls, so
// in-flight offloads pile up against the ring; admission control sheds
// new connections with a TCP reset while the pressure lasts, keeps the
// admitted connections' latency bounded, and restores full admission
// once the fault clears (the injector's Limit runs out).
func TestOverloadShedsAtAcceptAndRecovers(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 2,
		RingCapacity:       8,
		Injector: fault.NewInjector(1, fault.Rule{
			Kind:     fault.Stall,
			Endpoint: fault.AnyEndpoint,
			Op:       int(qat.OpRSA),
			P:        1,
			Limit:    100, // the fault clears after 100 stalled ops
		}),
	})
	t.Cleanup(dev.Close)
	run := ConfigQTLS
	run.OpTimeout = 40 * time.Millisecond
	run.Overload = offload.OverloadPolicy{
		MaxConns:              -1, // isolate the QAT-pressure signal
		ShedFraction:          0.5,
		KeepaliveShedFraction: -1,
	}
	reg := metrics.NewRegistry()
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(1 << 20),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	eng := srv.Workers()[0].Engine()
	engCap := eng.RingCapacity()

	// Sample in-flight pressure for the duration of the overload phase:
	// admission control must keep it at or under the ring capacity.
	var maxInflight atomic.Int64
	sampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-sampler:
				return
			case <-time.After(2 * time.Millisecond):
				if n := int64(eng.InflightTotal()); n > maxInflight.Load() {
					maxInflight.Store(n)
				}
			}
		}
	}()

	// Phase 1: saturating closed-loop load against the stalled device.
	const clients = 24
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:     srv.Addr(),
		Clients:  clients,
		Duration: 600 * time.Millisecond,
	})
	close(sampler)
	<-samplerDone

	if res.Shed == 0 {
		t.Fatalf("no client saw an admission reset under overload: %s", res)
	}
	if res.Connections == 0 {
		t.Fatalf("no connection admitted under overload: %s", res)
	}
	// Each admitted connection runs its handshake ops sequentially, so
	// in-flight offloads are bounded by the admitted conns — which the
	// shed policy caps at the client pool, never letting a retry storm
	// stack past it. (The device frees request-ring slots at pickup, so
	// this can legitimately sit above one ring's capacity.)
	if got := maxInflight.Load(); got > clients {
		t.Fatalf("inflight %d exceeded the admitted-connection bound %d (ring capacity %d)",
			got, clients, engCap)
	}
	// Admitted connections stay bounded: one 40ms op deadline plus
	// software fallback, far under a second even on a loaded host.
	if p99 := time.Duration(res.Latency.P99); p99 > time.Second {
		t.Fatalf("admitted-connection p99 %v not bounded under shedding", p99)
	}
	st := srv.Stats()
	if st.ShedAccepts == 0 {
		t.Fatalf("server recorded no accept sheds: %+v", st)
	}
	if !waitUntil(t, time.Second, func() bool { return reg.Snapshot()["qtls_shed_total"] >= 1 }) {
		t.Fatalf("qtls_shed_total not exported: %v", reg.Snapshot())
	}

	// Phase 2: the injector's limit is exhausted; after the last stalled
	// ops drain, light load must be admitted without a single shed.
	if !waitUntil(t, 2*time.Second, func() bool { return eng.InflightTotal() == 0 }) {
		t.Fatalf("inflight never drained after the fault cleared: %d", eng.InflightTotal())
	}
	res2 := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        3,
		Duration:       300 * time.Millisecond,
		MaxConnections: 30,
	})
	if res2.Shed != 0 {
		t.Fatalf("admission not restored after the fault cleared: %s", res2)
	}
	if res2.Connections < 5 {
		t.Fatalf("too few connections after recovery: %s", res2)
	}
	if res2.Errors != 0 {
		t.Fatalf("errors after recovery: %s", res2)
	}
}

// Keepalive-reuse shedding: past the connection-cap pressure point the
// response carries Connection: close followed by a clean close-notify,
// which the client counts as a clean close, not an error.
func TestKeepaliveShedUnderConnPressure(t *testing.T) {
	run := ConfigSW
	run.Overload = offload.OverloadPolicy{
		MaxConns:              1, // 4*conns >= 3*MaxConns holds for every live conn
		ShedFraction:          -1,
		KeepaliveShedFraction: -1,
	}
	srv, _ := startServer(t, run, 1, nil)

	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(readerFor(tc))
	if _, err := tc.Write([]byte("GET /64 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	lcReadResponse(t, br)

	// The response was served, but keepalive reuse was refused: the
	// server follows it with a close-notify instead of waiting for the
	// next request.
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("post-response read = %v, want io.EOF", err)
	}
	if !tc.CloseNotifyReceived() {
		t.Fatal("keepalive shed closed without a close-notify")
	}
	st := srv.Stats()
	if st.ShedKeepalive == 0 {
		t.Fatalf("no keepalive sheds recorded: %+v", st)
	}
	if st.Requests == 0 {
		t.Fatalf("request not served before the shed: %+v", st)
	}
}
