//go:build linux

package server

import (
	"time"

	"qtls/internal/flight"
	"qtls/internal/netpoll"
	"qtls/internal/offload"
	"qtls/internal/trace"
)

// Connection-lifecycle policy driver: the worker-side consumer of
// offload.DeadlinePolicy and offload.OverloadPolicy. Arming decisions,
// expiry handling, admission control and the graceful-drain sweep all
// run on the worker goroutine; only the Drain trigger crosses in.

// armDeadline arms class for c, replacing whatever deadline was armed.
// A class with a non-positive timeout disarms instead. Re-arming the
// same class is suppressed while the deadline would move by less than a
// wheel tick, so per-read header refreshes cost one comparison.
func (w *Worker) armDeadline(c *conn, class offload.DeadlineClass) {
	d := w.deadlines.Timeout(class)
	if d <= 0 {
		w.disarmDeadline(c)
		return
	}
	deadline := time.Now().Add(d)
	if c.dlArmed && c.dlClass == class && deadline.Sub(c.dlAt) < w.wheel.tick {
		return
	}
	c.dlGen++ // strands the previous wheel entry
	c.dlArmed = true
	c.dlClass = class
	c.dlAt = deadline
	w.wheel.add(c)
}

// disarmDeadline lazily cancels c's armed deadline.
func (w *Worker) disarmDeadline(c *conn) {
	if c.dlArmed {
		c.dlArmed = false
		c.dlGen++
	}
}

// rearmDeadline re-derives which lifecycle deadline covers c from its
// event-loop state, in priority order: an unfinished handshake keeps its
// accept-time deadline (never refreshed); buffered output awaits the
// peer's window (write-stall); an in-progress request refreshes the
// header deadline; anything else idles under the keepalive deadline.
// invoke() calls this after every handler run — the same places TCactive
// is maintained.
func (w *Worker) rearmDeadline(c *conn) {
	switch {
	case !c.tls.HandshakeComplete():
		if c.dlArmed && c.dlClass == offload.DeadlineHandshake {
			return // armed at accept; a handshake never earns more time
		}
		w.armDeadline(c, offload.DeadlineHandshake)
	case c.draining || c.nc.HasPending():
		w.armDeadline(c, offload.DeadlineWrite)
	case c.active || len(c.reqBuf) > 0 || len(c.writeBody) > 0 ||
		(c.stream != nil && c.stream.Pending() > 0):
		w.armDeadline(c, offload.DeadlineHeader)
	default:
		w.armDeadline(c, offload.DeadlineKeepalive)
	}
}

// advanceWheel walks the elapsed wheel ticks, expiring due deadlines.
func (w *Worker) advanceWheel() {
	if w.wheel.live == 0 {
		// Still move the cursor so a later burst of arms lands in the
		// right slots relative to `now`.
		w.wheel.advance(time.Now(), nil)
		return
	}
	w.wheel.advance(time.Now(), w.expireDeadline)
}

// expireDeadline enforces one expired lifecycle deadline. Idle keepalive
// connections get a TLS close-notify (an orderly server-initiated
// close); everything else — stalled handshakes, half-received headers,
// stuck writes — is cut. Connections parked on an offload go through
// closeConn's cancel path so the engine's inflight accounting and
// breakers stay consistent.
func (w *Worker) expireDeadline(c *conn) {
	class := c.dlClass
	w.disarmDeadline(c)
	w.Stats.DeadlineExpired[class].Add(1)
	w.fl.Note(flight.KindDeadline, uint8(class), trace.OpNone, 0, int64(c.fd))
	if class == offload.DeadlineKeepalive && !c.asyncPending {
		w.closeGracefully(c, trace.TagNone)
		return
	}
	w.closeConn(c)
}

// closeGracefully queues a TLS close-notify and closes once it reaches
// the kernel; buffered output lingers under a write-stall deadline.
func (w *Worker) closeGracefully(c *conn, tag trace.Tag) {
	if c.closed {
		return
	}
	if w.tr.Active() {
		w.tr.Record(trace.PhaseShed, trace.OpNone, tag, int64(c.fd), time.Now(), 0)
	}
	w.sendCloseNotify(c) // queues the close-notify alert on the owning plane
	if c.nc.Flush(); c.nc.HasPending() {
		c.draining = true
		w.updateWriteInterest(c)
		w.armDeadline(c, offload.DeadlineWrite)
		return
	}
	w.closeConn(c)
}

// admissionPressure returns the inflight count and ring capacity the
// overload policy should judge: under a multi-device placement the
// pool-wide aggregate (work this worker sheds can land on any device,
// and other workers' load fills the same rings), otherwise this worker's
// own engine — the exact legacy view.
func (w *Worker) admissionPressure() (inflight, ringCap int) {
	if w.poolWide {
		return w.pool.TotalPressure()
	}
	if w.eng != nil {
		inflight = w.eng.InflightTotal()
	}
	return inflight, w.ringCap
}

// shedAccept decides admission for a just-accepted connection and, when
// shedding, aborts it with a TCP reset — the whole exchange costs the
// server an accept and a close, and the client finds out immediately.
func (w *Worker) shedAccept(nc *netpoll.Conn) bool {
	inflight, ringCap := w.admissionPressure()
	if !w.shed.ShedAccept(inflight, ringCap, len(w.conns)) {
		return false
	}
	w.Stats.ShedAccepts.Add(1)
	w.fl.Note(flight.KindShed, flight.ShedAccept, trace.OpNone, 0, int64(nc.FD()))
	if w.tr.Active() {
		w.tr.Record(trace.PhaseShed, trace.OpNone, trace.TagNone, int64(nc.FD()), time.Now(), 0)
	}
	nc.Abort()
	return true
}

// shedKeepalive decides whether c's current response should carry
// Connection: close instead of offering keepalive reuse.
func (w *Worker) shedKeepalive(c *conn) bool {
	inflight, ringCap := w.admissionPressure()
	if !w.shed.ShedKeepalive(inflight, ringCap, len(w.conns)) {
		return false
	}
	w.Stats.ShedKeepalive.Add(1)
	w.fl.Note(flight.KindShed, flight.ShedKeepalive, trace.OpNone, 0, int64(c.fd))
	if w.tr.Active() {
		w.tr.Record(trace.PhaseShed, trace.OpNone, trace.TagNone, int64(c.fd), time.Now(), 0)
	}
	return true
}

// Drain asks the worker to shut down gracefully: stop accepting, let
// admitted work and in-flight QAT responses complete, close-notify idle
// keepalive connections, flush coalesced submits, then exit the loop.
// Safe to call from any goroutine; Stop() remains the hard cutoff.
func (w *Worker) Drain() {
	if w.draining.CompareAndSwap(false, true) {
		w.wake()
	}
}

// Draining reports whether a graceful drain has been requested.
func (w *Worker) Draining() bool { return w.draining.Load() }

// drainStep runs one drain iteration on the worker goroutine and
// reports whether the worker is fully drained and may tear down.
func (w *Worker) drainStep() bool {
	if !w.listenerOff {
		// Stop accepting first: the listening socket leaves the epoll set
		// and closes, so new SYNs land on other workers or are refused.
		w.poller.Del(w.listener.FD())
		w.listener.Close()
		w.listenerOff = true
		w.fl.Note(flight.KindDrain, flight.DrainStart, trace.OpNone, 0, int64(len(w.conns)))
	}
	for _, c := range w.conns {
		if c.asyncPending || c.draining {
			continue // a QAT response or a queued close-notify completes it
		}
		if c.active || len(c.reqBuf) > 0 || len(c.writeBody) > 0 || c.nc.HasPending() ||
			(c.stream != nil && c.stream.Pending() > 0) {
			continue // admitted work in progress; its write handler closes after it
		}
		if !c.tls.HandshakeComplete() {
			// Mid-handshake and idle: nothing admitted yet, cut it.
			w.closeConn(c)
			continue
		}
		w.closeGracefully(c, trace.TagDrain)
	}
	if len(w.conns) > 0 {
		return false
	}
	// Everything settled; push any straggler coalesced submissions out
	// before the poller and pipes are torn down.
	w.flushSubmits()
	w.fl.Note(flight.KindDrain, flight.DrainDone, trace.OpNone, 0, 0)
	return true
}
