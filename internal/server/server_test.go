//go:build linux

package server

import (
	"sync"
	"testing"
	"time"

	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/qat"
)

var (
	idOnce sync.Once
	rsaID  *minitls.Identity
)

func identity(t testing.TB) *minitls.Identity {
	t.Helper()
	idOnce.Do(func() {
		var err error
		rsaID, err = minitls.NewRSAIdentity(2048)
		if err != nil {
			panic(err)
		}
	})
	return rsaID
}

func startServer(t *testing.T, run RunConfig, workers int, tlsExtra func(*minitls.Config)) (*Server, *qat.Device) {
	t.Helper()
	var dev *qat.Device
	if run.UseQAT {
		dev = qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
		t.Cleanup(dev.Close)
	}
	tlsCfg := &minitls.Config{
		Identity:     identity(t),
		CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
	}
	if tlsExtra != nil {
		tlsExtra(tlsCfg)
	}
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Run:     run,
		TLS:     tlsCfg,
		Device:  dev,
		Handler: SizedBodyHandler(4 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, dev
}

// Every configuration serves full handshakes and data end-to-end.
func TestAllConfigurationsServe(t *testing.T) {
	for _, run := range Configurations() {
		run := run
		t.Run(run.Name, func(t *testing.T) {
			srv, dev := startServer(t, run, 2, nil)
			res := loadgen.STime(loadgen.STimeOptions{
				Addr:           srv.Addr(),
				Clients:        8,
				Duration:       400 * time.Millisecond,
				RequestPath:    "/2048",
				MaxConnections: 64,
			})
			if res.Connections == 0 {
				t.Fatalf("%s: no connections completed: %s", run.Name, res)
			}
			if res.Errors > res.Connections/4 {
				t.Fatalf("%s: too many errors: %s", run.Name, res)
			}
			st := srv.Stats()
			if st.Handshakes == 0 || st.Requests == 0 {
				t.Fatalf("%s: server stats empty: %+v", run.Name, st)
			}
			if run.UseQAT {
				total := uint64(0)
				for _, c := range dev.Counters() {
					total += c.TotalRequests()
				}
				if total == 0 {
					t.Fatalf("%s: no requests reached the QAT device", run.Name)
				}
			}
		})
	}
}

// The async configurations deliver async events; QTLS uses the
// kernel-bypass queue, QAT+A/AH the FD pipe.
func TestNotificationSchemesExercised(t *testing.T) {
	for _, run := range []RunConfig{ConfigQATA, ConfigQATAH, ConfigQTLS} {
		run := run
		t.Run(run.Name, func(t *testing.T) {
			srv, _ := startServer(t, run, 1, nil)
			res := loadgen.STime(loadgen.STimeOptions{
				Addr:           srv.Addr(),
				Clients:        4,
				Duration:       300 * time.Millisecond,
				MaxConnections: 32,
			})
			if res.Connections == 0 {
				t.Fatalf("no connections: %s", res)
			}
			st := srv.Stats()
			if st.AsyncEvents == 0 {
				t.Fatalf("%s: no async events delivered: %+v", run.Name, st)
			}
			// ECDHE-RSA: ECDH keygen + RSA sign + ECDH derive + 4 PRF = 7
			// async events per full handshake.
			if st.AsyncEvents < st.Handshakes*7 {
				t.Fatalf("%s: async events %d < 7×handshakes %d", run.Name, st.AsyncEvents, st.Handshakes)
			}
		})
	}
}

// Heuristic polling fires for the heuristic configurations only.
func TestHeuristicPollingCounters(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 1, nil)
	loadgen.STime(loadgen.STimeOptions{
		Addr: srv.Addr(), Clients: 8, Duration: 300 * time.Millisecond, MaxConnections: 48,
	})
	st := srv.Stats()
	if st.HeuristicPolls == 0 {
		t.Fatalf("no heuristic polls: %+v", st)
	}
	if st.TimerPolls != 0 {
		t.Fatalf("timer polls in heuristic config: %+v", st)
	}

	srvA, _ := startServer(t, ConfigQATA, 1, nil)
	loadgen.STime(loadgen.STimeOptions{
		Addr: srvA.Addr(), Clients: 4, Duration: 200 * time.Millisecond, MaxConnections: 16,
	})
	stA := srvA.Stats()
	if stA.TimerPolls == 0 {
		t.Fatalf("no timer polls in QAT+A: %+v", stA)
	}
	if stA.HeuristicPolls != 0 {
		t.Fatalf("heuristic polls in timer config: %+v", stA)
	}
}

// Session resumption through the full server stack (the §5.3 workload).
func TestServerSessionResumption(t *testing.T) {
	cache := minitls.NewSessionCache(256)
	srv, _ := startServer(t, ConfigQTLS, 1, func(c *minitls.Config) {
		c.SessionCache = cache
	})
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       400 * time.Millisecond,
		ResumeFraction: 1.0,
		MaxConnections: 40,
	})
	if res.Connections < 8 {
		t.Fatalf("too few connections: %s", res)
	}
	if res.Resumed == 0 {
		t.Fatalf("no resumed connections: %s", res)
	}
	st := srv.Stats()
	if st.Resumed == 0 {
		t.Fatalf("server saw no resumptions: %+v", st)
	}
}

// Large responses exercise async cipher offload through the worker write
// path (the Fig. 10 workload shape).
func TestLargeTransferThroughWorker(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 1, nil)
	res := loadgen.AB(loadgen.ABOptions{
		Addr:        srv.Addr(),
		Clients:     4,
		Duration:    500 * time.Millisecond,
		Path:        "/131072", // 128 KB → 8 records per response
		MaxRequests: 24,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests: %s", res)
	}
	if res.BytesIn < int64(res.Requests)*131072 {
		t.Fatalf("short responses: %s", res)
	}
	if res.Errors > 0 {
		t.Fatalf("errors: %s", res)
	}
}

// Multiple workers share the port and the QAT device's endpoints.
func TestMultiWorkerBalancing(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 4, nil)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        8,
		Duration:       800 * time.Millisecond,
		MaxConnections: 120,
	})
	// Absolute counts are host-dependent (CI may pin this to one core);
	// what matters is that connections complete and spread across workers.
	if res.Connections < 10 {
		t.Fatalf("too few connections: %s", res)
	}
	busy := 0
	for _, w := range srv.Workers() {
		if w.Stats.Handshakes.Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d/4 workers handled connections", busy)
	}
	// Instances were distributed across the 3 endpoints.
	endpoints := map[int]bool{}
	for _, w := range srv.Workers() {
		if w.Engine() != nil {
			endpoints[w.id%3] = true
		}
	}
	if len(endpoints) < 2 {
		t.Fatal("instances not distributed across endpoints")
	}
}

// TLS 1.3 through the full event-driven stack.
func TestServerTLS13(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 1, func(c *minitls.Config) {
		c.MaxVersion = minitls.VersionTLS13
		c.CipherSuites = nil
	})
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       300 * time.Millisecond,
		TLS:            &minitls.Config{MaxVersion: minitls.VersionTLS13},
		RequestPath:    "/512",
		MaxConnections: 24,
	})
	if res.Connections == 0 || res.Errors > 0 {
		t.Fatalf("TLS 1.3 run failed: %s", res)
	}
}

// Keepalive: one connection, many requests (idle/active transitions feed
// TCactive).
func TestKeepaliveRequests(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 1, nil)
	res := loadgen.AB(loadgen.ABOptions{
		Addr:        srv.Addr(),
		Clients:     1,
		Duration:    400 * time.Millisecond,
		Path:        "/100",
		MaxRequests: 20,
	})
	if res.Requests < 5 {
		t.Fatalf("too few keepalive requests: %s", res)
	}
	if res.Connections != 1 {
		t.Fatalf("connections = %d, want 1 keepalive conn", res.Connections)
	}
	st := srv.Stats()
	if st.Requests < 5 || st.Handshakes != 1 {
		t.Fatalf("server stats: %+v", st)
	}
}

// 404 handling.
func TestNotFound(t *testing.T) {
	srv, _ := startServer(t, ConfigSW, 1, nil)
	res := loadgen.AB(loadgen.ABOptions{
		Addr:        srv.Addr(),
		Clients:     1,
		Duration:    200 * time.Millisecond,
		Path:        "/nope",
		MaxRequests: 1,
	})
	if res.Requests != 1 {
		t.Fatalf("request not served: %s", res)
	}
}

// Ring-full pressure: a tiny ring with many concurrent handshakes forces
// submission retries, which must all recover.
func TestRingFullRecovery(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 2,
		RingCapacity:       2,
		ServiceTime:        map[qat.OpType]time.Duration{qat.OpRSA: 500 * time.Microsecond},
	})
	t.Cleanup(dev.Close)
	tlsCfg := &minitls.Config{
		Identity:     identity(t),
		CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
	}
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     ConfigQTLS,
		TLS:     tlsCfg,
		Device:  dev,
		Handler: SizedBodyHandler(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        12,
		Duration:       600 * time.Millisecond,
		MaxConnections: 60,
	})
	if res.Connections < 12 {
		t.Fatalf("too few connections under ring pressure: %s", res)
	}
	st := srv.Stats()
	if st.Errors > 0 {
		t.Fatalf("server errors under ring pressure: %+v", st)
	}
	t.Logf("retry events: %d (ring pressure %s)", st.RetryEvents, res)
}

func TestSizedBodyHandler(t *testing.T) {
	h := SizedBodyHandler(1024)
	body, ok := h("/100")
	if !ok || len(body) != 100 {
		t.Fatalf("h(/100) = %d, %v", len(body), ok)
	}
	if _, ok := h("/2048"); ok {
		t.Fatal("oversized request allowed")
	}
	if _, ok := h("/abc"); ok {
		t.Fatal("malformed path allowed")
	}
	b2, _ := h("/100")
	if &body[0] != &b2[0] {
		t.Fatal("body not cached")
	}
}

func TestConfigStrings(t *testing.T) {
	if PollNone.String() != "none" || PollTimer.String() != "timer" || PollHeuristic.String() != "heuristic" {
		t.Fatal("polling names")
	}
	if NotifyFD.String() != "fd" || NotifyKernelBypass.String() != "kernel-bypass" {
		t.Fatal("notify names")
	}
	if PollingScheme(9).String() == "" || NotifyScheme(9).String() == "" {
		t.Fatal("unknown scheme rendering")
	}
	if len(Configurations()) != 5 {
		t.Fatal("want the paper's 5 configurations")
	}
}

// TLS 1.3 PSK resumption through the full event-driven stack.
func TestServerTLS13Resumption(t *testing.T) {
	var key [32]byte
	copy(key[:], []byte("server-13-resumption-ticket-key!"))
	srv, _ := startServer(t, ConfigQTLS, 1, func(c *minitls.Config) {
		c.MaxVersion = minitls.VersionTLS13
		c.CipherSuites = nil
		c.TicketKey = &key
	})
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        2,
		Duration:       500 * time.Millisecond,
		TLS:            &minitls.Config{MaxVersion: minitls.VersionTLS13},
		ResumeFraction: 1.0,
		RequestPath:    "/256", // the read consumes the NewSessionTicket
		MaxConnections: 20,
	})
	if res.Connections < 4 {
		t.Fatalf("too few connections: %s", res)
	}
	if res.Resumed == 0 {
		t.Fatalf("no 1.3 resumptions: %s", res)
	}
	st := srv.Stats()
	if st.Resumed == 0 {
		t.Fatalf("server saw no resumptions: %+v", st)
	}
}
