//go:build linux

package server

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"qtls/internal/minitls"
)

// A request with "Connection: close" gets a close-tagged response and an
// orderly connection shutdown afterwards.
func TestConnectionCloseSemantics(t *testing.T) {
	srv, _ := startServer(t, ConfigSW, 1, nil)
	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	req := "GET /64 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
	if _, err := tc.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(readerFor(tc))
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("status = %q", status)
	}
	sawClose := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if strings.EqualFold(line, "connection: close") {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatal("response missing Connection: close")
	}
	body := make([]byte, 64)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatal(err)
	}
	// The server closes: next read yields EOF (close-notify).
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("after close: err = %v, want EOF", err)
	}
}

// Keepalive requests on the same connection still work when the final
// one asks for close.
func TestKeepaliveThenClose(t *testing.T) {
	srv, _ := startServer(t, ConfigSW, 1, nil)
	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(readerFor(tc))
	readResp := func() {
		t.Helper()
		cl := -1
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "" {
				break
			}
			if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
				cl = atoiOr(strings.TrimSpace(v), -1)
			}
		}
		if cl < 0 {
			t.Fatal("no content length")
		}
		if _, err := io.CopyN(io.Discard, br, int64(cl)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := tc.Write([]byte("GET /32 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
			t.Fatal(err)
		}
		readResp()
	}
	if _, err := tc.Write([]byte("GET /32 HTTP/1.1\r\nConnection: Close\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	readResp()
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("after close: err = %v, want EOF", err)
	}
	st := srv.Stats()
	if st.Requests != 4 || st.Handshakes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func atoiOr(s string, def int) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	return n
}

type tlsReaderAdapter struct{ c *minitls.Conn }

func (r tlsReaderAdapter) Read(p []byte) (int, error) { return r.c.Read(p) }

func readerFor(c *minitls.Conn) io.Reader { return tlsReaderAdapter{c} }
