//go:build linux

package server

import (
	"strconv"
	"sync/atomic"

	"qtls/internal/metrics"
	"qtls/internal/offload"
	"qtls/internal/trace"
)

// Registry plumbing: pre-created series, WorkerStats mirroring and the
// per-iteration gauge refresh. The series names here are the public
// /metrics contract — keep them stable.

// mirroredCounter syncs one WorkerStats atomic into a monotonic registry
// counter by shipping deltas; last is only touched by the worker
// goroutine.
type mirroredCounter struct {
	src  *atomic.Int64
	ctr  *metrics.Counter
	last int64
}

// pollCauses maps the batch-histogram index to the poll trigger tag.
var pollCauses = [4]trace.Tag{trace.TagHeuristic, trace.TagTimer, trace.TagFailover, trace.TagRetry}

func batchIdx(tag trace.Tag) int {
	for i, t := range pollCauses {
		if t == tag {
			return i
		}
	}
	return 0
}

// initSeries pre-creates this worker's registry series so the hot path
// never hits the registry mutex, and so /metrics lists every series from
// the first scrape.
func (w *Worker) initSeries() {
	if w.reg == nil {
		return
	}
	wl := `{worker="` + strconv.Itoa(w.id) + `"}`
	w.histNotify = w.reg.Histogram(trace.PhaseSeriesName(trace.PhaseNotify))
	w.histPost = w.reg.Histogram(trace.PhaseSeriesName(trace.PhasePost))
	w.histLoop = w.reg.Histogram(`qtls_loop_iter_ns` + wl)
	w.histPollWait = w.reg.Histogram(`qtls_poll_wait_ns` + wl)
	for i, tag := range pollCauses {
		w.histBatch[i] = w.reg.Histogram(`qtls_poll_batch{cause="` + tag.String() + `"}`)
	}
	if w.cfg.CoalesceSubmits {
		w.histFlush = w.reg.Histogram(`qtls_submit_flush_batch`)
	}
	w.gInflight = w.reg.Gauge(`qtls_inflight` + wl)
	w.gActive = w.reg.Gauge(`qtls_active_conns` + wl)
	w.gConns = w.reg.Gauge(`qtls_conns` + wl)
	w.gWaiting = w.reg.Gauge(`qtls_async_waiting` + wl)
	w.gLag = w.reg.Gauge(`qtls_loop_lag_ns` + wl)
	// The heuristic thresholds in effect (offload.Default* unless the
	// conf overrides them), so a dashboard can plot Rtotal against the
	// line it must cross. The labeled form is the canonical series; the
	// two legacy names stay for existing dashboards. When the adaptive
	// controller is armed its change hook refreshes the labeled gauges
	// (last-moving worker wins, like the legacy gauges under per-worker
	// overrides).
	w.gThreshold[offload.ThresholdAsym] = w.reg.Gauge(`qtls_poll_threshold{class="asym"}`)
	w.gThreshold[offload.ThresholdSym] = w.reg.Gauge(`qtls_poll_threshold{class="sym"}`)
	w.gThreshold[offload.ThresholdAsym].Set(int64(w.poll.AsymThreshold))
	w.gThreshold[offload.ThresholdSym].Set(int64(w.poll.SymThreshold))
	w.reg.Gauge("qtls_asym_threshold").Set(int64(w.poll.AsymThreshold))
	w.reg.Gauge("qtls_sym_threshold").Set(int64(w.poll.SymThreshold))
	st := &w.Stats
	for _, m := range []struct {
		name string
		src  *atomic.Int64
	}{
		{"qtls_accepted", &st.Accepted},
		{"qtls_handshakes", &st.Handshakes},
		{"qtls_resumed", &st.Resumed},
		{"qtls_requests", &st.Requests},
		{"qtls_bytes_out", &st.BytesOut},
		{"qtls_async_events", &st.AsyncEvents},
		{"qtls_retry_events", &st.RetryEvents},
		{"qtls_submit_flush_events", &st.SubmitFlushes},
		{`qtls_polls{cause="heuristic"}`, &st.HeuristicPolls},
		{`qtls_polls{cause="timer"}`, &st.TimerPolls},
		{`qtls_polls{cause="failover"}`, &st.FailoverPolls},
		{"qtls_deadline_wakeups", &st.DeadlineWakeups},
		{"qtls_closed_conns", &st.ClosedConns},
		{"qtls_errors", &st.Errors},
		// Admission control: the total plus a per-site breakdown. Both
		// shed stats feed qtls_shed_total — delta shipping makes multiple
		// mirrors into one counter additive, not clobbering.
		{"qtls_shed_total", &st.ShedAccepts},
		{"qtls_shed_total", &st.ShedKeepalive},
		{`qtls_sheds{site="accept"}`, &st.ShedAccepts},
		{`qtls_sheds{site="keepalive"}`, &st.ShedKeepalive},
	} {
		w.mirrors = append(w.mirrors, mirroredCounter{src: m.src, ctr: w.reg.Counter(m.name)})
	}
	for i := range st.DeadlineExpired {
		name := `qtls_deadline_expired{class="` + offload.DeadlineClass(i).String() + `"}`
		w.mirrors = append(w.mirrors, mirroredCounter{src: &st.DeadlineExpired[i], ctr: w.reg.Counter(name)})
	}
	w.gDrain = w.reg.Gauge("qtls_drain_active")
}

// mirrorStats ships WorkerStats deltas into the shared registry. Only
// the worker goroutine calls it, so `last` needs no synchronization.
// Counters are shared across workers (no worker label), so deltas — not
// absolute stores — keep them correct.
func (w *Worker) mirrorStats() {
	for i := range w.mirrors {
		m := &w.mirrors[i]
		if v := m.src.Load(); v != m.last {
			m.ctr.Add(v - m.last)
			m.last = v
		}
	}
}

// updateGauges publishes the event-loop state the heuristic constraints
// read (§4.3): Rtotal vs the thresholds, TCactive vs live conns.
func (w *Worker) updateGauges() {
	if w.gInflight == nil {
		return
	}
	inflight := 0
	if w.eng != nil {
		inflight = w.eng.InflightTotal()
	}
	w.gInflight.Set(int64(inflight))
	w.gActive.Set(int64(w.activeConns))
	w.gConns.Set(int64(len(w.conns)))
	w.gWaiting.Set(int64(w.asyncWaiting))
	if w.gDrain != nil {
		// Unlabeled, server-wide: Shutdown drains every worker together.
		if w.draining.Load() {
			w.gDrain.Set(1)
		} else {
			w.gDrain.Set(0)
		}
	}
}
