//go:build linux

package server

import (
	"context"
	"runtime"
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/loadgen"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// The chaos soak harness: a scripted device kill and recovery driven
// through fault.Schedule against a live conn-hash sharded server with the
// lifecycle manager on. The invariants are the ISSUE's acceptance
// criteria — zero hung connections, zero leaked inflight ops or
// goroutines, p99 bounded while the device is quarantined, and CPS back
// within 10% of the pre-fault plateau once probation re-admits it.

// chaosLifecycleConfig shrinks every lifecycle window so the full
// healthy → quarantined → probation → healthy cycle fits in a soak of a
// few seconds.
func chaosLifecycleConfig() *qat.LifecycleConfig {
	return &qat.LifecycleConfig{
		Window:          400 * time.Millisecond,
		SuspectOpens:    1,
		QuarantineOpens: 2,
		ResetStorm:      3,
		WedgeTimeout:    120 * time.Millisecond,
		ProbationAfter:  250 * time.Millisecond,
		ProbeTrickle:    4,
		ProbeSuccesses:  4,
		PollInterval:    10 * time.Millisecond,
	}
}

// startChaosServer builds a two-device conn-hash pool where device 1
// carries its own injector (the chaos schedule's target), lifecycle
// management enabled and the flight recorder capturing the journal.
func startChaosServer(t *testing.T) (*Server, *qat.Pool, *fault.Injector, *flight.Recorder) {
	t.Helper()
	spec := qat.DeviceSpec{Endpoints: 2, EnginesPerEndpoint: 4, RingCapacity: 128}
	sick := spec
	inj := fault.NewInjector(7)
	sick.Injector = inj
	pool := qat.PoolOf(qat.NewDevice(spec), qat.NewDevice(sick))
	t.Cleanup(pool.Close)

	rec := trace.NewRecorder(1024)
	rec.SetEnabled(true)
	fr := flight.New(flight.Config{})
	fr.SetEnabled(true)

	run := ConfigQTLS
	run.Placement = offload.PlacementConnHash
	run.OpTimeout = 10 * time.Millisecond
	run.Lifecycle = chaosLifecycleConfig()
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Pool:    pool,
		Handler: SizedBodyHandler(1 << 20),
		Metrics: metrics.NewRegistry(),
		Trace:   rec,
		Flight:  fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, pool, inj, fr
}

// chaosLoad drives one measured soak phase.
func chaosLoad(addr string, d time.Duration) loadgen.Result {
	return loadgen.STime(loadgen.STimeOptions{
		Addr:     addr,
		Clients:  4,
		Duration: d,
	})
}

func waitDeviceState(t *testing.T, lc *qat.Lifecycle, dev int, want qat.DeviceState, timeout time.Duration) {
	t.Helper()
	if !waitUntil(t, timeout, func() bool { return lc.State(dev) == want }) {
		t.Fatalf("device %d never reached %v (state %v)", dev, want, lc.State(dev))
	}
}

// TestChaosSoakKillRecover is the scripted kill/recover scenario: a
// stall window wedges device 1, the lifecycle quarantines it and the
// worker homed there re-homes onto device 0; when the window closes,
// probation probes the device back to health, the worker re-homes back,
// and throughput recovers to the pre-fault plateau.
func TestChaosSoakKillRecover(t *testing.T) {
	srv, pool, inj, fr := startChaosServer(t)
	time.Sleep(20 * time.Millisecond) // device/worker goroutines settle
	base := runtime.NumGoroutine()
	lc := srv.Lifecycle()
	if lc == nil {
		t.Fatal("lifecycle not provisioned")
	}

	// Phase 1: pre-fault plateau.
	pre := chaosLoad(srv.Addr(), time.Second)
	if pre.Connections < 16 {
		t.Fatalf("baseline too weak: %s", pre)
	}
	if pre.Errors > 0 {
		t.Fatalf("baseline errors: %s", pre)
	}

	// Phase 2: scripted kill. A stall window on device 1 leaks ring slots
	// and suppresses completions — the wedge watchdog (or breaker
	// density, whichever fires first) must quarantine it.
	sched, err := fault.ParseSchedule("t=0ms dev1 stall 700ms")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	applyDone := make(chan error, 1)
	go func() {
		applyDone <- sched.Apply(ctx,
			func(dev int) *fault.Injector {
				if dev == 1 {
					return inj
				}
				return nil
			},
			func(dev int) { pool.Device(dev).Reset() })
	}()

	loadDone := make(chan loadgen.Result, 1)
	go func() { loadDone <- chaosLoad(srv.Addr(), 1200*time.Millisecond) }()

	waitDeviceState(t, lc, 1, qat.DevQuarantined, 3*time.Second)
	// The worker homed on the quarantined device re-homes live.
	if !waitUntil(t, 2*time.Second, func() bool {
		return srv.Workers()[1].HomeDevice() == 0
	}) {
		t.Fatalf("worker 1 never re-homed off the quarantined device (home=%d)",
			srv.Workers()[1].HomeDevice())
	}
	chaos := <-loadDone
	if chaos.Errors > 0 {
		t.Fatalf("hard client errors during chaos (sheds are fine): %s", chaos)
	}
	if chaos.Connections == 0 {
		t.Fatalf("no connections survived the chaos window: %s", chaos)
	}
	// p99 bounded while quarantined: ops either complete on the healthy
	// device or fall back to software after OpTimeout — nothing waits for
	// the full stall window.
	if p99 := time.Duration(chaos.Latency.P99); p99 > 400*time.Millisecond {
		t.Fatalf("chaos-phase p99 unbounded: %v", p99)
	}
	if err := <-applyDone; err != nil {
		t.Fatalf("schedule apply: %v", err)
	}

	// Phase 3: recovery. The stall window is closed; quarantine matures
	// into probation, probe traffic scores clean, and the device is
	// re-admitted. Keep load flowing so probes are actually admitted.
	recovered := false
	for i := 0; i < 10 && !recovered; i++ {
		chaosLoad(srv.Addr(), 300*time.Millisecond)
		recovered = lc.State(1) == qat.DevHealthy
	}
	if !recovered {
		t.Fatalf("device 1 never re-admitted (state %v)", lc.State(1))
	}
	// And the worker re-homes back onto its hash device.
	if !waitUntil(t, 2*time.Second, func() bool {
		chaosLoad(srv.Addr(), 100*time.Millisecond)
		return srv.Workers()[1].HomeDevice() == 1
	}) {
		t.Fatalf("worker 1 never re-homed back (home=%d)", srv.Workers()[1].HomeDevice())
	}

	// CPS recovers to within 10% of the pre-fault plateau. One window is
	// measured per attempt to ride out scheduler noise under -race.
	var post loadgen.Result
	okCPS := false
	for i := 0; i < 3 && !okCPS; i++ {
		post = chaosLoad(srv.Addr(), time.Second)
		okCPS = post.Errors == 0 && post.CPS() >= 0.9*pre.CPS()
	}
	if !okCPS {
		t.Fatalf("CPS did not recover: pre %.0f, post %.0f (%s)", pre.CPS(), post.CPS(), post)
	}

	// The journal tells the whole story: quarantine entry, probation,
	// probe-ok re-admission, and the placement flips of the re-homes.
	var sawQuarantine, sawProbeOK, sawPlacement bool
	for _, e := range fr.Events(0) {
		switch e.Kind {
		case flight.KindLifecycle:
			_, to := flight.LifecycleStates(e.Dur)
			if to == "quarantined" {
				sawQuarantine = true
			}
			if to == "healthy" && e.Code == uint8(qat.ReasonProbeOK) {
				sawProbeOK = true
			}
		case flight.KindPlacement:
			sawPlacement = true
		}
	}
	if !sawQuarantine || !sawProbeOK || !sawPlacement {
		t.Fatalf("journal missing lifecycle story: quarantine=%v probe-ok=%v placement=%v",
			sawQuarantine, sawProbeOK, sawPlacement)
	}

	// Soak invariants: drain clean, nothing hung, nothing leaked.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
	for _, w := range srv.Workers() {
		if n := w.ConnCount(); n != 0 {
			t.Fatalf("%s holds %d hung connections", w, n)
		}
		if e := w.Engine(); e != nil && e.InflightTotal() != 0 {
			t.Fatalf("%s leaked %d in-flight offloads", w, e.InflightTotal())
		}
	}
	for _, h := range pool.Health() {
		if h.Inflight != 0 || h.Leaked != 0 {
			t.Fatalf("device %d not drained: %+v", h.Device, h)
		}
	}
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		ok = runtime.NumGoroutine() <= base+2
		if !ok {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), base)
	}
}

// TestChaosSoakResetStorm drives the second grammar action end to end: a
// burst of endpoint resets quarantines the device via the reset-storm
// detector, without any injector rule installed.
func TestChaosSoakResetStorm(t *testing.T) {
	srv, pool, _, _ := startChaosServer(t)
	lc := srv.Lifecycle()

	sched, err := fault.ParseSchedule("t=0ms dev1 reset-storm n=4 gap=30ms")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	applyDone := make(chan error, 1)
	go func() {
		applyDone <- sched.Apply(ctx, func(int) *fault.Injector { return nil },
			func(dev int) { pool.Device(dev).Reset() })
	}()
	loadDone := make(chan loadgen.Result, 1)
	go func() { loadDone <- chaosLoad(srv.Addr(), 800*time.Millisecond) }()

	waitDeviceState(t, lc, 1, qat.DevQuarantined, 3*time.Second)
	if err := <-applyDone; err != nil {
		t.Fatalf("schedule apply: %v", err)
	}
	res := <-loadDone
	if res.Errors > 0 {
		t.Fatalf("client errors during reset storm: %s", res)
	}
	// Recovery follows the same probation path.
	recovered := false
	for i := 0; i < 10 && !recovered; i++ {
		chaosLoad(srv.Addr(), 300*time.Millisecond)
		recovered = lc.State(1) == qat.DevHealthy
	}
	if !recovered {
		t.Fatalf("device 1 never re-admitted after storm (state %v)", lc.State(1))
	}
}
