//go:build linux

package server

import (
	"testing"
	"time"

	"qtls/internal/flight"
	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

func startShardedServer(t *testing.T, placement offload.Placement, devices, workers int) (*Server, *qat.Pool) {
	t.Helper()
	pool := qat.NewPool(devices, qat.DeviceSpec{Endpoints: 2, EnginesPerEndpoint: 4, RingCapacity: 128})
	t.Cleanup(pool.Close)
	run := ConfigQTLS
	run.Placement = placement
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Pool:    pool,
		Handler: SizedBodyHandler(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, pool
}

// TestShardedResumptionE2E drives a resumption-heavy mix against a
// class-sharded two-device pool: tickets issued by one worker resume on
// whichever worker SO_REUSEPORT hashes the reconnect to (the ring New
// provisions is shared), asymmetric handshake ops land on the asym
// device and PRF/cipher traffic on the sym device.
func TestShardedResumptionE2E(t *testing.T) {
	srv, pool := startShardedServer(t, offload.PlacementClassShard, 2, 2)
	if srv.TicketKeys() == nil {
		t.Fatal("sharded placement did not provision a shared ticket ring")
	}
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       500 * time.Millisecond,
		TLS:            &minitls.Config{RequestTicket: true},
		ResumeFraction: 0.8,
		MaxConnections: 48,
	})
	if res.Connections < 8 {
		t.Fatalf("too few connections: %s", res)
	}
	if res.Errors > 0 {
		t.Fatalf("errors under sharded placement: %s", res)
	}
	if res.Resumed == 0 || res.FullHandshakes() == 0 {
		t.Fatalf("0.8 mix must produce both kinds: %s", res)
	}
	st := srv.Stats()
	if st.Resumed == 0 {
		t.Fatalf("server saw no resumptions: %+v", st)
	}

	// Both devices carry pool-allocated instances (asym shard + sym shard
	// in every worker's engine), and the class lanes routed to their
	// preferred shards: asym ops to device 0, sym/PRF ops to device 1.
	health := pool.Health()
	if len(health) != 2 || health[0].Instances == 0 || health[1].Instances == 0 {
		t.Fatalf("instances not spread across devices: %+v", health)
	}
	for _, w := range srv.Workers() {
		eng := w.Engine()
		if eng.Placement() != offload.PlacementClassShard {
			t.Fatalf("%s: engine placement %v", w, eng.Placement())
		}
		if got := eng.LaneDevice(flight.PlacementAsym); got != 0 {
			t.Errorf("%s: asym lane on device %d, want 0", w, got)
		}
		if got := eng.LaneDevice(flight.PlacementSym); got != 1 {
			t.Errorf("%s: sym lane on device %d, want 1", w, got)
		}
	}
}

// TestConnHashPlacementE2E homes each worker on its hash device: with
// two workers and two devices, both devices serve traffic and resumption
// still crosses workers through the shared ring.
func TestConnHashPlacementE2E(t *testing.T) {
	srv, pool := startShardedServer(t, offload.PlacementConnHash, 2, 2)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       400 * time.Millisecond,
		TLS:            &minitls.Config{RequestTicket: true},
		ResumeFraction: 0.5,
		MaxConnections: 32,
	})
	if res.Connections == 0 || res.Errors > 0 {
		t.Fatalf("bad run: %s", res)
	}
	health := pool.Health()
	if health[0].Instances == 0 || health[1].Instances == 0 {
		t.Fatalf("workers did not home on distinct devices: %+v", health)
	}
	var reqs uint64
	for _, d := range pool.Devices() {
		for _, c := range d.Counters() {
			reqs += c.TotalRequests()
		}
	}
	if reqs == 0 {
		t.Fatal("no requests reached the pool")
	}
}

// TestSinglePlacementLegacyPath pins the parity guarantee: a pool passed
// with the zero Placement behaves exactly like the legacy bare Device —
// everything allocates on device 0 and the engine runs without a
// placement layer.
func TestSinglePlacementLegacyPath(t *testing.T) {
	srv, pool := startShardedServer(t, offload.PlacementSingle, 2, 2)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        2,
		Duration:       300 * time.Millisecond,
		MaxConnections: 16,
	})
	if res.Connections == 0 || res.Errors > 0 {
		t.Fatalf("bad run: %s", res)
	}
	if srv.TicketKeys() != nil {
		t.Fatal("single placement must not auto-provision a ticket ring")
	}
	health := pool.Health()
	if health[0].Instances == 0 {
		t.Fatalf("no instances on device 0: %+v", health)
	}
	if health[1].Instances != 0 {
		t.Fatalf("single placement leaked instances onto device 1: %+v", health)
	}
	for _, w := range srv.Workers() {
		if w.Engine().Placement() != offload.PlacementSingle {
			t.Fatalf("%s: engine placement %v", w, w.Engine().Placement())
		}
	}
}
