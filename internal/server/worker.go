//go:build linux

package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qtls/internal/engine"
	"qtls/internal/flight"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/netpoll"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/record"
	"qtls/internal/trace"
)

// Handler produces the response body for a request path; ok=false yields
// a 404.
type Handler func(path string) (body []byte, ok bool)

// WorkerStats are cumulative per-worker counters, safe to read from other
// goroutines.
type WorkerStats struct {
	Accepted    atomic.Int64
	Handshakes  atomic.Int64
	Resumed     atomic.Int64
	Requests    atomic.Int64
	BytesOut    atomic.Int64
	AsyncEvents atomic.Int64
	RetryEvents atomic.Int64
	// SubmitFlushes counts submit-coalescer flushes that placed at least
	// one gathered op on a request ring (see engine.Flush).
	SubmitFlushes  atomic.Int64
	HeuristicPolls atomic.Int64
	TimerPolls     atomic.Int64
	FailoverPolls  atomic.Int64
	// DeadlineWakeups counts paused-offload resumes forced by the op
	// deadline scan (graceful degradation of a sick device).
	DeadlineWakeups atomic.Int64
	// ShedAccepts / ShedKeepalive count admission-control rejections: a
	// TCP reset before any TLS bytes are spent, and a Connection: close
	// instead of keepalive reuse, respectively (offload.OverloadPolicy).
	ShedAccepts   atomic.Int64
	ShedKeepalive atomic.Int64
	// DeadlineExpired counts lifecycle-deadline expiries by class
	// (indexed by offload.DeadlineClass).
	DeadlineExpired [offload.NumDeadlineClasses]atomic.Int64
	ClosedConns     atomic.Int64
	Errors          atomic.Int64
}

// Worker is one event-driven server worker: one epoll loop, one optional
// QAT crypto instance, many concurrent TLS connections — the unit the
// paper scales from 2 to 32 of (Fig. 7).
type Worker struct {
	id        int
	cfg       RunConfig
	poll      offload.PollPolicy     // resolved retrieval policy (shared seam)
	deadlines offload.DeadlinePolicy // resolved lifecycle deadlines
	shed      offload.OverloadPolicy // resolved admission-control policy
	tlsTmpl   *minitls.Config
	eng       *engine.Engine
	rec       *record.Engine // post-handshake record data plane (nil: software)
	handler   Handler
	reg       *metrics.Registry

	// pool is the device pool instances were allocated from; poolWide
	// marks a multi-device placement, under which admission control reads
	// the pool's aggregate pressure instead of this worker's engine.
	pool     *qat.Pool
	poolWide bool

	// Device-lifecycle re-homing state: the pool's lifecycle manager (nil
	// when unmanaged), the last lifecycle epoch this worker acted on, and
	// the worker's conn-hash home device. The Run loop compares the epoch
	// once per iteration (one atomic load) and re-derives the home when a
	// device was quarantined or re-admitted — established connections and
	// the shared ticket ring are untouched, only where new submissions
	// land moves.
	lc      *qat.Lifecycle
	lcEpoch int64
	homeDev atomic.Int32

	poller     *netpoll.Poller
	listener   *netpoll.Listener
	notifyPipe *netpoll.NotifyPipe // FD-based async notification
	stopPipe   *netpoll.NotifyPipe // cross-goroutine stop/wake

	conns map[int]*conn
	// notif owns the completed-but-undelivered async events and the
	// delivery strategy — the §3.4 queues (kernel-bypass async queue, FD
	// queue) behind the shared offload.Notifier seam.
	notif        offload.Notifier
	retryQueue   []*conn // conns awaiting a submission retry
	recWaiting   []*conn // conns whose record-path response is in flight
	activeConns  int     // TCactive = alive - idle (§4.3)
	asyncWaiting int     // conns with asyncPending set (deadline scan gate)

	lastPoll time.Time // last response-retrieval poll (failover timer)

	// adaptive is the closed-loop threshold controller (nil = static
	// thresholds, the paper's behavior). Its feedback is the flight
	// recorder's retrieve-phase window plus batchWin, the per-worker
	// completion-batch window fed by pollEngine.
	adaptive *offload.AdaptivePoll
	batchWin *flight.Window

	wheel   *deadlineWheel // lifecycle deadlines (see wheel.go)
	ringCap int            // engine request-ring capacity (0 for SW)

	stopped  atomic.Bool
	draining atomic.Bool // graceful drain requested (Drain)
	// listenerOff marks the listener already closed by the drain sweep so
	// cleanup doesn't close it twice. Worker goroutine only.
	listenerOff bool
	// closeMu orders FD teardown against cross-goroutine wakes: cleanup
	// tears the pipes down exactly once under it, and wake() checks
	// fdsClosed before writing to the stop pipe, so Stop or Drain racing
	// a dying worker never touches a closed descriptor.
	closeMu   sync.Mutex
	fdsClosed bool

	Stats WorkerStats

	// Observability surface (see internal/trace). tracer/tr are nil-safe:
	// with tracing off the per-iteration cost is one atomic load.
	tracer *trace.Recorder // shared recorder behind /debug/trace
	tr     *trace.Buffer   // this worker's private span ring

	// Black-box flight recorder (see internal/flight). flight/fl are
	// nil-safe like tracer/tr: with the recorder disabled every journal
	// site costs one branch plus one atomic load.
	flight *flight.Recorder // shared recorder behind /debug/flight
	fl     *flight.Journal  // this worker's private event ring

	// Pre-created registry series (nil when reg is nil). Histograms are
	// only fed while tracing is enabled; gauges and mirrored counters are
	// refreshed every loop iteration regardless.
	histNotify   *metrics.Histogram    // qtls_phase_ns{phase="notify"}
	histPost     *metrics.Histogram    // qtls_phase_ns{phase="post"}
	histLoop     *metrics.Histogram    // busy part of one loop iteration
	histPollWait *metrics.Histogram    // time blocked in epoll_wait
	histBatch    [4]*metrics.Histogram // poll batch size by cause
	histFlush    *metrics.Histogram    // coalescer flush size (ops per flush)
	gInflight    *metrics.Gauge        // Rtotal, per worker
	gActive      *metrics.Gauge        // TCactive, per worker
	gConns       *metrics.Gauge        // live connections
	gWaiting     *metrics.Gauge        // conns with a paused offload
	gLag         *metrics.Gauge        // busy ns of the latest iteration
	gDrain       *metrics.Gauge        // 1 while a graceful drain runs
	gThreshold   [2]*metrics.Gauge     // qtls_poll_threshold{class}, by offload.Threshold*
	mirrors      []mirroredCounter     // WorkerStats → registry counters
}

// conn is one TLS connection's event-loop state.
type conn struct {
	fd      int
	nc      *netpoll.Conn
	tls     *minitls.Conn
	handler func(*conn)

	// asyncPending marks a paused offload job: read events are deferred
	// ("QTLS clears and saves the handler of the read event when an async
	// event is being expected", §4.2).
	asyncPending bool
	pendingRead  bool
	// asyncDeadline forces a resume of the paused job when the op
	// deadline passes without a response (zero when deadlines are off);
	// the engine then degrades the op to software.
	asyncDeadline time.Time
	// notifyAt stamps (UnixNano) when the async event for this conn was
	// queued, so resumeAsync can attribute the notification phase. Zero
	// when tracing is off.
	notifyAt int64

	active          bool
	reqBuf          []byte
	writeBody       []byte
	wantWrite       bool
	closeAfterWrite bool
	draining        bool // close once buffered output drains
	closed          bool

	// Record-path state (RecordMode != software): the offloaded write
	// stream installed after the handshake, the plaintext size of the
	// response currently moving through it, and whether the conn is on
	// the worker's record-completion scan list.
	stream    *record.Stream
	respBytes int
	recQueued bool

	// Deadline-wheel state (see wheel.go): whether a lifecycle deadline is
	// armed, its class, its absolute time, and the generation counter that
	// lazily stales old wheel entries on re-arm or close.
	dlArmed bool
	dlClass offload.DeadlineClass
	dlGen   uint64
	dlAt    time.Time
}

// NewWorker builds a worker. pool may be nil for the SW configuration;
// reg may be nil to disable the metrics/stub_status surface; tracer may
// be nil to disable span recording (the /debug/trace endpoint then 404s);
// fr may be nil to disable the flight recorder (the /debug/flight
// endpoint then 404s).
func NewWorker(id int, cfg RunConfig, addr string, tls *minitls.Config, pool *qat.Pool, handler Handler, reg *metrics.Registry, tracer *trace.Recorder, fr *flight.Recorder) (*Worker, error) {
	cfg = cfg.withDefaults()
	w := &Worker{
		id:        id,
		cfg:       cfg,
		poll:      cfg.pollPolicy(),
		deadlines: cfg.Deadlines,
		shed:      cfg.Overload,
		handler:   handler,
		reg:       reg,
		notif:     offload.NewNotifier(cfg.Notify),
		conns:     make(map[int]*conn),
		tracer:    tracer,
		tr:        tracer.Buffer(id), // nil recorder → nil (inert) buffer
		flight:    fr,
		fl:        fr.Journal(id), // nil recorder → nil (inert) journal
	}
	w.wheel = newDeadlineWheel(w.deadlines.Tick, time.Now())
	w.initSeries()
	var err error
	if w.poller, err = netpoll.NewPoller(); err != nil {
		return nil, err
	}
	if w.listener, err = netpoll.Listen(addr); err != nil {
		w.poller.Close()
		return nil, err
	}
	if err := w.poller.Add(w.listener.FD(), true, false); err != nil {
		w.cleanup()
		return nil, err
	}
	if w.stopPipe, err = netpoll.NewNotifyPipe(); err != nil {
		w.cleanup()
		return nil, err
	}
	if err := w.poller.Add(w.stopPipe.ReadFD(), true, false); err != nil {
		w.cleanup()
		return nil, err
	}
	// poolWide: placement is spreading work across several devices, so
	// admission control must read pool-wide pressure, not one engine's.
	multi := pool != nil && pool.Size() > 1 && cfg.Placement != offload.PlacementSingle
	w.pool = pool
	w.poolWide = multi
	// homeDev is where single-placement and conn-hash workers allocate
	// everything: device 0 exactly as before placement existed, or the
	// worker-hash device of the conn-hash mode.
	homeDev := 0
	if multi && cfg.Placement == offload.PlacementConnHash {
		homeDev = id % pool.Size()
	}
	w.homeDev.Store(int32(homeDev))
	if pool != nil {
		w.lc = pool.Lifecycle()
		if w.lc != nil {
			w.lcEpoch = w.lc.Epoch()
		}
	}
	if cfg.UseQAT {
		if pool == nil || pool.Size() == 0 {
			w.cleanup()
			return nil, errors.New("server: QAT configuration without a device")
		}
		n := cfg.InstancesPerWorker
		if n <= 0 {
			n = 1
		}
		var insts []*qat.Instance
		var instDevs []int
		engPlacement := offload.PlacementSingle
		if multi && cfg.Placement != offload.PlacementSingle {
			// Class sharding and conn-hash both happen inside the engine:
			// the worker owns instances on every device. Class-shard routes
			// each op class to its lane's device set; conn-hash prefers the
			// worker's home device on both lanes and treats the other
			// devices as spill (and as re-home targets when the lifecycle
			// quarantines the home).
			engPlacement = cfg.Placement
			for d := 0; d < pool.Size(); d++ {
				for i := 0; i < n; i++ {
					inst, err := pool.AllocInstance(d)
					if err != nil {
						w.cleanup()
						return nil, err
					}
					insts = append(insts, inst)
					instDevs = append(instDevs, d)
				}
			}
		} else {
			// Single placement: the legacy path, byte-identical — nil
			// InstanceDevices keeps the engine's round-robin untouched.
			for i := 0; i < n; i++ {
				inst, err := pool.AllocInstance(homeDev)
				if err != nil {
					w.cleanup()
					return nil, err
				}
				insts = append(insts, inst)
			}
			if homeDev != 0 {
				instDevs = make([]int, len(insts))
				for i := range instDevs {
					instDevs[i] = homeDev
				}
			}
		}
		var err error
		w.eng, err = engine.New(engine.Config{
			Instances:       insts,
			InstanceDevices: instDevs,
			Placement:       engPlacement,
			HomeDevice:      homeDev,
			Lifecycle:       w.lc,
			Offload:         cfg.Offload,
			OpTimeout:       cfg.OpTimeout,
			MaxRetries:      cfg.MaxRetries,
			RetryBackoff:    cfg.RetryBackoff,
			Breaker:         cfg.Breaker,
			Coalesce:        cfg.CoalesceSubmits && cfg.AsyncMode != minitls.AsyncModeOff,
			Metrics:         reg,
			Trace:           w.tr,
			Flight:          w.fl,
		})
		if err != nil {
			w.cleanup()
			return nil, err
		}
		w.ringCap = w.eng.RingCapacity()
	}
	if cfg.RecordMode != offload.RecordSoftware {
		// The record data plane gets its own crypto instance, separate
		// from the handshake engine's: symmetric bulk ops must not
		// compete for ring slots with latency-critical asymmetric ops.
		// Without a device the engine still runs, all-software.
		var recInst *qat.Instance
		if cfg.UseQAT && pool != nil {
			recDev := homeDev
			if multi && cfg.Placement == offload.PlacementClassShard {
				// Record traffic is symmetric: keep it on the sym shard.
				recDev = cfg.Placement.SymDevices(pool.Size())[0]
			}
			if recInst, err = pool.AllocInstance(recDev); err != nil {
				w.cleanup()
				return nil, err
			}
		}
		w.rec = record.New(record.Config{
			Instance: recInst,
			Policy:   cfg.recordPolicy(),
			Breaker:  cfg.Breaker,
			Metrics:  reg,
			Trace:    w.tr,
			Flight:   w.fl,
		})
	}
	if cfg.AdaptivePoll != nil && cfg.Polling == PollHeuristic {
		if tracer == nil || fr == nil {
			w.cleanup()
			return nil, errors.New("server: adaptive polling needs the trace and flight recorders (its feedback source)")
		}
		w.batchWin = fr.NewWindow()
		ac := *cfg.AdaptivePoll
		if ac.Failover <= 0 {
			// Steer against the failover timer actually pacing this
			// policy, not the paper default.
			ac.Failover = w.poll.FailoverInterval
		}
		w.adaptive = offload.NewAdaptivePoll(ac, flight.WindowFeedback{
			Latency: fr.PhaseWindow(trace.PhaseRetrieve),
			Batch:   w.batchWin,
		})
		w.adaptive.SetOnChange(func(class, old, new int) {
			w.fl.Note(flight.KindThreshold, uint8(class), trace.OpNone, int64(old), int64(new))
			if class >= 0 && class < len(w.gThreshold) && w.gThreshold[class] != nil {
				w.gThreshold[class].Set(int64(new))
			}
		})
		// Behind the unchanged seam: ShouldPoll and FailoverDue call sites
		// below read the walked thresholds through PollPolicy.Threshold.
		w.poll.Adaptive = w.adaptive
	}
	// The kernel-bypass scheme is the only one that never writes a
	// notification descriptor; fd and coalesced both need the pipe.
	if cfg.Notify != NotifyKernelBypass && cfg.AsyncMode != minitls.AsyncModeOff {
		if w.notifyPipe, err = netpoll.NewNotifyPipe(); err != nil {
			w.cleanup()
			return nil, err
		}
		if err := w.poller.Add(w.notifyPipe.ReadFD(), true, false); err != nil {
			w.cleanup()
			return nil, err
		}
	}

	// Per-worker TLS template.
	tmpl := *tls
	tmpl.AsyncMode = cfg.AsyncMode
	if w.eng != nil {
		tmpl.Provider = w.eng
	}
	w.tlsTmpl = &tmpl
	w.lastPoll = time.Now()
	return w, nil
}

func (w *Worker) cleanup() {
	w.closeMu.Lock()
	defer w.closeMu.Unlock()
	if w.fdsClosed {
		return
	}
	w.fdsClosed = true
	if w.poller != nil {
		w.poller.Close()
	}
	if w.listener != nil && !w.listenerOff {
		w.listener.Close()
	}
	if w.stopPipe != nil {
		w.stopPipe.Close()
	}
	if w.notifyPipe != nil {
		w.notifyPipe.Close()
	}
}

// Addr returns the worker's listening address.
func (w *Worker) Addr() string { return w.listener.Addr() }

// Engine returns the worker's QAT engine (nil for SW).
func (w *Worker) Engine() *engine.Engine { return w.eng }

// Stop asks the loop to exit and wakes it.
func (w *Worker) Stop() {
	if w.stopped.CompareAndSwap(false, true) {
		w.wake()
	}
}

// wake nudges the event loop out of epoll_wait. It tolerates a worker
// whose descriptors are already torn down (Stop or Drain racing the
// loop's own shutdown) by checking fdsClosed under closeMu.
func (w *Worker) wake() {
	w.closeMu.Lock()
	defer w.closeMu.Unlock()
	if w.fdsClosed || w.stopPipe == nil {
		return
	}
	w.stopPipe.Notify()
}

// Close releases the worker's descriptors without running its loop — the
// teardown path for workers that were built but never started (e.g. a
// later worker's construction failed). Idempotent, and safe after Run
// has exited.
func (w *Worker) Close() { w.cleanup() }

// Run drives the event loop until Stop. It must run on a single goroutine.
func (w *Worker) Run() {
	defer w.shutdown()
	for !w.stopped.Load() {
		// Loop profiling splits each iteration into the blocked part
		// (epoll_wait) and the busy part; the busy part is the event-loop
		// lag new events experience. Timestamping is skipped entirely
		// when tracing is off.
		tracing := w.tr.Active()
		var iterStart, busyStart time.Time
		if tracing {
			iterStart = time.Now()
		}
		events, err := w.poller.Wait(w.waitTimeout())
		if err != nil {
			w.Stats.Errors.Add(1)
			return
		}
		if tracing {
			busyStart = time.Now()
			if w.histPollWait != nil {
				w.histPollWait.ObserveDuration(busyStart.Sub(iterStart))
			}
		}
		for _, ev := range events {
			w.dispatch(ev)
		}
		// Ops paused during event dispatch are batched onto the rings now,
		// so the retrieval checks below can already see them in flight.
		w.flushSubmits()
		retrieved := 0
		if w.eng != nil && w.poll.Scheme == PollTimer {
			retrieved = w.pollEngine(trace.TagTimer)
			if retrieved > 0 {
				w.lastPoll = time.Now()
			}
			w.Stats.TimerPolls.Add(1)
		}
		if w.poll.Scheme == PollHeuristic {
			// The loop keeps executing while requests are in flight
			// (§3.4); each iteration re-evaluates the heuristic
			// constraints so responses are retrieved as soon as the
			// timeliness condition holds.
			w.heuristicCheck()
		}
		w.failoverCheck()
		w.deadlineCheck()
		w.advanceWheel()
		w.processAsyncQueue()
		w.processRetryQueue()
		w.pollRecordEngine()
		w.maybeRehome()
		// Retried submissions and ops paused by resumed handlers after the
		// last drain round must not wait out the epoll sleep.
		w.flushSubmits()
		if w.draining.Load() && w.drainStep() {
			return // fully drained: deferred shutdown tears down cleanly
		}
		if w.reg != nil {
			w.updateGauges()
			w.mirrorStats()
		}
		// Controller step: rate-limited internally to the configured
		// interval, so per-iteration cost is one mutex round and usually
		// nothing else.
		if w.adaptive != nil {
			w.adaptive.Tick(time.Now().UnixNano())
		}
		// Anomaly sweep: rate-limited internally to half a window bucket,
		// so per-iteration cost is one atomic load when disabled and one
		// clock read + CAS otherwise.
		w.flight.Check()
		if tracing {
			busy := time.Since(busyStart)
			if w.histLoop != nil {
				w.histLoop.ObserveDuration(busy)
			}
			if w.gLag != nil {
				w.gLag.Set(int64(busy))
			}
		}
		if len(events) == 0 && retrieved == 0 && w.notif.Pending(offload.DeliverLoopEnd) == 0 {
			// The in-flight crypto work runs on this host's CPUs (the
			// simulated accelerator's engines are goroutines, unlike the
			// paper's ASIC): when the loop has nothing to do, yield so
			// the engines get cycles instead of being starved by the
			// keep-executing spin.
			runtime.Gosched()
		}
	}
}

func (w *Worker) shutdown() {
	// closeConn (not a bare nc.Close) so connections parked on an offload
	// cancel through the engine: the paused job settles, inflight counters
	// drop, and the fiber goroutine exits instead of leaking.
	for _, c := range w.conns {
		w.closeConn(c)
	}
	w.cleanup()
}

// waitTimeout picks the epoll timeout in milliseconds.
func (w *Worker) waitTimeout() int {
	inflight := 0
	if w.eng != nil {
		inflight = w.eng.InflightTotal()
	}
	switch {
	case w.pendingNotifications() > 0 || len(w.retryQueue) > 0:
		return 0
	case w.rec != nil && (w.rec.Inflight() > 0 || len(w.recWaiting) > 0):
		// Offloaded record seals in flight: keep the loop executing so
		// completions flush to their sockets as soon as they land.
		return 0
	case w.eng != nil && w.eng.PendingSubmits() > 0:
		// Gathered submissions must reach the rings, not wait out a sleep.
		return 0
	case w.cfg.OpTimeout > 0 && w.asyncWaiting > 0:
		// Paused offload jobs with a deadline: wake soon enough for the
		// deadline scan even if the device never responds.
		return 1
	case w.poll.Scheme == PollTimer && w.eng != nil && inflight > 0:
		// Timer polling: wake at the polling interval. Sub-millisecond
		// intervals degenerate to a busy poll, like a 10 µs polling
		// thread does.
		ms := int(w.poll.Interval / time.Millisecond)
		return ms // 0 for <1ms: immediate re-poll
	case w.poll.Scheme == PollHeuristic && inflight > 0:
		// Keep the loop executing while offload requests are in flight
		// (§3.4): response retrieval is driven by the in-loop heuristic
		// checks under either notification scheme.
		return 0
	default:
		if w.wheel.live > 0 {
			// Armed lifecycle deadlines: wake at the wheel tick so expiry
			// lags by at most one tick even on an otherwise idle loop.
			ms := int(w.wheel.tick / time.Millisecond)
			if ms < 1 {
				ms = 1
			}
			if ms > 50 {
				ms = 50
			}
			return ms
		}
		return 50 // idle: block briefly, then re-check stop flag
	}
}

func (w *Worker) dispatch(ev netpoll.Event) {
	switch ev.FD {
	case w.listener.FD():
		w.acceptAll()
	case w.stopPipe.ReadFD():
		w.stopPipe.Drain()
	default:
		if w.notifyPipe != nil && ev.FD == w.notifyPipe.ReadFD() {
			w.notifyPipe.Drain()
			w.processFDQueue()
			return
		}
		c, ok := w.conns[ev.FD]
		if !ok {
			return
		}
		if ev.Writable {
			if err := c.nc.Flush(); err != nil {
				w.closeConn(c)
				return
			}
			if c.draining && !c.nc.HasPending() {
				w.closeConn(c)
				return
			}
			w.updateWriteInterest(c)
		}
		if ev.Readable && !c.draining {
			w.onReadable(c)
		} else if ev.Closed && !ev.Readable {
			// Hang-up with nothing left to read.
			w.closeConn(c)
		}
	}
}

func (w *Worker) acceptAll() {
	for {
		nc, err := w.listener.Accept()
		if err != nil {
			return // would-block or transient
		}
		if w.shedAccept(nc) {
			continue
		}
		w.Stats.Accepted.Add(1)
		c := &conn{fd: nc.FD(), nc: nc, active: true}
		c.tls = minitls.Server(nc, w.tlsTmpl)
		c.handler = w.handshakeHandler
		// The connection-level async callback delivers events for every
		// offload job of this connection (one shared channel per
		// connection, §4.4).
		if w.cfg.AsyncMode != minitls.AsyncModeOff {
			c.tls.SetAsyncCallback(w.asyncEventCallback, c)
		}
		if err := w.poller.Add(c.fd, true, false); err != nil {
			nc.Close()
			continue
		}
		w.conns[c.fd] = c
		w.activeConns++
		w.invoke(c)
	}
}

// invoke runs the connection's current handler and then the heuristic
// checks ("wherever a crypto operation may be involved or TCactive may be
// updated", §4.3).
func (w *Worker) invoke(c *conn) {
	if c.closed {
		return
	}
	c.handler(c)
	if !c.closed {
		w.updateWriteInterest(c)
		w.rearmDeadline(c)
	}
	w.heuristicCheck()
}

func (w *Worker) onReadable(c *conn) {
	if c.asyncPending {
		// Event disorder: a read event arrived before the expected async
		// event. Defer it; the saved handler resumes after the async
		// event (§4.2).
		c.pendingRead = true
		return
	}
	if !c.active {
		c.active = true
		w.activeConns++
	}
	w.invoke(c)
}

func (w *Worker) updateWriteInterest(c *conn) {
	want := c.nc.HasPending()
	if want != c.wantWrite {
		c.wantWrite = want
		w.poller.Mod(c.fd, true, want)
	}
}

// setAsyncPending flips the conn's paused-offload mark and keeps the
// worker's count of waiting conns (the deadline-scan gate) in step.
func (w *Worker) setAsyncPending(c *conn, pending bool) {
	if c.asyncPending == pending {
		return
	}
	c.asyncPending = pending
	if pending {
		w.asyncWaiting++
	} else {
		w.asyncWaiting--
		c.asyncDeadline = time.Time{}
	}
}

func (w *Worker) closeConn(c *conn) {
	if c.closed {
		return
	}
	c.closed = true
	if c.asyncPending {
		// The connection is parked on an in-flight offload. Mark the op
		// cancelled and re-enter the saved handler: the paused job resumes,
		// the engine settles it as abandoned (inflight accounting and
		// breaker bookkeeping stay consistent), and the handler's own
		// closeConn call on the resulting error is a no-op via the closed
		// flag above.
		w.setAsyncPending(c, false)
		c.tls.CancelAsync()
		c.handler(c)
	}
	w.setAsyncPending(c, false)
	if c.stream != nil {
		// Abandon the record-path response: in-flight seals complete
		// into the engine's pool without touching the dead socket.
		c.stream.Cancel()
		c.stream = nil
	}
	w.disarmDeadline(c)
	if c.active {
		c.active = false
		w.activeConns--
	}
	delete(w.conns, c.fd)
	w.poller.Del(c.fd)
	c.nc.Close()
	w.Stats.ClosedConns.Add(1)
}

// maybeRehome reacts to device-lifecycle transitions: when the lifecycle
// epoch moved since the last iteration, a conn-hash worker re-derives its
// home device through the pool's lifecycle-aware RouteConn — off a
// quarantined device, and back once probation re-admits it. The move is
// live: established connections, paused offload jobs and the shared
// ticket ring are untouched; only the engine's lane preference (where new
// submissions land) changes. Runs on the worker goroutine; costs one
// atomic load per iteration when nothing changed.
func (w *Worker) maybeRehome() {
	if w.lc == nil {
		return
	}
	epoch := w.lc.Epoch()
	if epoch == w.lcEpoch {
		return
	}
	w.lcEpoch = epoch
	if w.eng == nil || w.cfg.Placement != offload.PlacementConnHash || !w.poolWide {
		return
	}
	dev := w.pool.RouteConn(uint64(w.id))
	if dev < 0 {
		// Every device is quarantined. Stay put: the engine's lifecycle
		// admission check refuses every instance and ops degrade to the
		// software path until a device comes back.
		return
	}
	prev := w.eng.HomeDevice()
	if w.eng.Rehome(dev) {
		w.homeDev.Store(int32(dev))
		// Journal the move per lane so the flight dump shows which worker
		// was re-homed, from where, to where.
		w.fl.Note(flight.KindPlacement, flight.PlacementAsym, trace.OpNone, int64(prev), int64(dev))
		w.fl.Note(flight.KindPlacement, flight.PlacementSym, trace.OpNone, int64(prev), int64(dev))
	}
}

// HomeDevice returns the worker's current conn-hash home device (0 for
// other placements). Safe from any goroutine — live observers (chaos
// harness, qatinfo) read it while the worker re-homes.
func (w *Worker) HomeDevice() int { return int(w.homeDev.Load()) }

// ConnCount returns the number of live connections (test/diagnostic use;
// call from the worker goroutine or after Stop).
func (w *Worker) ConnCount() int { return len(w.conns) }

// PollThresholds returns the heuristic thresholds currently in effect:
// the controller's walked values when adaptive polling is armed, the
// static policy otherwise. Safe from any goroutine.
func (w *Worker) PollThresholds() (asym, sym int) {
	if w.adaptive != nil {
		return w.adaptive.Thresholds()
	}
	return w.poll.AsymThreshold, w.poll.SymThreshold
}

// String identifies the worker.
func (w *Worker) String() string {
	return fmt.Sprintf("worker-%d[%s]", w.id, w.cfg.Name)
}
