//go:build linux

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"qtls/internal/asynclib"
	"qtls/internal/engine"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/netpoll"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// Handler produces the response body for a request path; ok=false yields
// a 404.
type Handler func(path string) (body []byte, ok bool)

// WorkerStats are cumulative per-worker counters, safe to read from other
// goroutines.
type WorkerStats struct {
	Accepted    atomic.Int64
	Handshakes  atomic.Int64
	Resumed     atomic.Int64
	Requests    atomic.Int64
	BytesOut    atomic.Int64
	AsyncEvents atomic.Int64
	RetryEvents atomic.Int64
	// SubmitFlushes counts submit-coalescer flushes that placed at least
	// one gathered op on a request ring (see engine.Flush).
	SubmitFlushes  atomic.Int64
	HeuristicPolls atomic.Int64
	TimerPolls     atomic.Int64
	FailoverPolls  atomic.Int64
	// DeadlineWakeups counts paused-offload resumes forced by the op
	// deadline scan (graceful degradation of a sick device).
	DeadlineWakeups atomic.Int64
	ClosedConns     atomic.Int64
	Errors          atomic.Int64
}

// Worker is one event-driven server worker: one epoll loop, one optional
// QAT crypto instance, many concurrent TLS connections — the unit the
// paper scales from 2 to 32 of (Fig. 7).
type Worker struct {
	id      int
	cfg     RunConfig
	tlsTmpl *minitls.Config
	eng     *engine.Engine
	handler Handler
	reg     *metrics.Registry

	poller     *netpoll.Poller
	listener   *netpoll.Listener
	notifyPipe *netpoll.NotifyPipe // FD-based async notification
	stopPipe   *netpoll.NotifyPipe // cross-goroutine stop/wake

	conns        map[int]*conn
	asyncQueue   []*conn // kernel-bypass async queue (§3.4)
	fdQueue      []*conn // conns whose async event travelled via the pipe
	retryQueue   []*conn // conns awaiting a submission retry
	activeConns  int     // TCactive = alive - idle (§4.3)
	asyncWaiting int     // conns with asyncPending set (deadline scan gate)

	lastPoll time.Time // last response-retrieval poll (failover timer)

	stopped atomic.Bool
	Stats   WorkerStats

	// Observability surface (see internal/trace). tracer/tr are nil-safe:
	// with tracing off the per-iteration cost is one atomic load.
	tracer *trace.Recorder // shared recorder behind /debug/trace
	tr     *trace.Buffer   // this worker's private span ring

	// Pre-created registry series (nil when reg is nil). Histograms are
	// only fed while tracing is enabled; gauges and mirrored counters are
	// refreshed every loop iteration regardless.
	histNotify   *metrics.Histogram    // qtls_phase_ns{phase="notify"}
	histPost     *metrics.Histogram    // qtls_phase_ns{phase="post"}
	histLoop     *metrics.Histogram    // busy part of one loop iteration
	histPollWait *metrics.Histogram    // time blocked in epoll_wait
	histBatch    [4]*metrics.Histogram // poll batch size by cause
	histFlush    *metrics.Histogram    // coalescer flush size (ops per flush)
	gInflight    *metrics.Gauge        // Rtotal, per worker
	gActive      *metrics.Gauge        // TCactive, per worker
	gConns       *metrics.Gauge        // live connections
	gWaiting     *metrics.Gauge        // conns with a paused offload
	gLag         *metrics.Gauge        // busy ns of the latest iteration
	mirrors      []mirroredCounter     // WorkerStats → registry counters
}

// mirroredCounter syncs one WorkerStats atomic into a monotonic registry
// counter by shipping deltas; last is only touched by the worker
// goroutine.
type mirroredCounter struct {
	src  *atomic.Int64
	ctr  *metrics.Counter
	last int64
}

// pollCauses maps the batch-histogram index to the poll trigger tag.
var pollCauses = [4]trace.Tag{trace.TagHeuristic, trace.TagTimer, trace.TagFailover, trace.TagRetry}

func batchIdx(tag trace.Tag) int {
	for i, t := range pollCauses {
		if t == tag {
			return i
		}
	}
	return 0
}

// conn is one TLS connection's event-loop state.
type conn struct {
	fd      int
	nc      *netpoll.Conn
	tls     *minitls.Conn
	handler func(*conn)

	// asyncPending marks a paused offload job: read events are deferred
	// ("QTLS clears and saves the handler of the read event when an async
	// event is being expected", §4.2).
	asyncPending bool
	pendingRead  bool
	// asyncDeadline forces a resume of the paused job when the op
	// deadline passes without a response (zero when deadlines are off);
	// the engine then degrades the op to software.
	asyncDeadline time.Time
	// notifyAt stamps (UnixNano) when the async event for this conn was
	// queued, so resumeAsync can attribute the notification phase. Zero
	// when tracing is off.
	notifyAt int64

	active          bool
	reqBuf          []byte
	writeBody       []byte
	wantWrite       bool
	closeAfterWrite bool
	draining        bool // close once buffered output drains
	closed          bool
}

// NewWorker builds a worker. dev may be nil for the SW configuration;
// reg may be nil to disable the metrics/stub_status surface; tracer may
// be nil to disable span recording (the /debug/trace endpoint then 404s).
func NewWorker(id int, cfg RunConfig, addr string, tls *minitls.Config, dev *qat.Device, handler Handler, reg *metrics.Registry, tracer *trace.Recorder) (*Worker, error) {
	cfg = cfg.withDefaults()
	w := &Worker{
		id:      id,
		cfg:     cfg,
		handler: handler,
		reg:     reg,
		conns:   make(map[int]*conn),
		tracer:  tracer,
		tr:      tracer.Buffer(id), // nil recorder → nil (inert) buffer
	}
	w.initSeries()
	var err error
	if w.poller, err = netpoll.NewPoller(); err != nil {
		return nil, err
	}
	if w.listener, err = netpoll.Listen(addr); err != nil {
		w.poller.Close()
		return nil, err
	}
	if err := w.poller.Add(w.listener.FD(), true, false); err != nil {
		w.cleanup()
		return nil, err
	}
	if w.stopPipe, err = netpoll.NewNotifyPipe(); err != nil {
		w.cleanup()
		return nil, err
	}
	if err := w.poller.Add(w.stopPipe.ReadFD(), true, false); err != nil {
		w.cleanup()
		return nil, err
	}
	if cfg.UseQAT {
		if dev == nil {
			w.cleanup()
			return nil, errors.New("server: QAT configuration without a device")
		}
		n := cfg.InstancesPerWorker
		if n <= 0 {
			n = 1
		}
		insts := make([]*qat.Instance, 0, n)
		for i := 0; i < n; i++ {
			inst, err := dev.AllocInstance()
			if err != nil {
				w.cleanup()
				return nil, err
			}
			insts = append(insts, inst)
		}
		var err error
		w.eng, err = engine.New(engine.Config{
			Instances:    insts,
			Offload:      cfg.Offload,
			OpTimeout:    cfg.OpTimeout,
			MaxRetries:   cfg.MaxRetries,
			RetryBackoff: cfg.RetryBackoff,
			Breaker:      cfg.Breaker,
			Coalesce:     cfg.CoalesceSubmits && cfg.AsyncMode != minitls.AsyncModeOff,
			Metrics:      reg,
			Trace:        w.tr,
		})
		if err != nil {
			w.cleanup()
			return nil, err
		}
	}
	if cfg.Notify == NotifyFD && cfg.AsyncMode != minitls.AsyncModeOff {
		if w.notifyPipe, err = netpoll.NewNotifyPipe(); err != nil {
			w.cleanup()
			return nil, err
		}
		if err := w.poller.Add(w.notifyPipe.ReadFD(), true, false); err != nil {
			w.cleanup()
			return nil, err
		}
	}

	// Per-worker TLS template.
	tmpl := *tls
	tmpl.AsyncMode = cfg.AsyncMode
	if w.eng != nil {
		tmpl.Provider = w.eng
	}
	w.tlsTmpl = &tmpl
	w.lastPoll = time.Now()
	return w, nil
}

func (w *Worker) cleanup() {
	if w.poller != nil {
		w.poller.Close()
	}
	if w.listener != nil {
		w.listener.Close()
	}
	if w.stopPipe != nil {
		w.stopPipe.Close()
	}
	if w.notifyPipe != nil {
		w.notifyPipe.Close()
	}
}

// initSeries pre-creates this worker's registry series so the hot path
// never hits the registry mutex, and so /metrics lists every series from
// the first scrape.
func (w *Worker) initSeries() {
	if w.reg == nil {
		return
	}
	wl := `{worker="` + strconv.Itoa(w.id) + `"}`
	w.histNotify = w.reg.Histogram(trace.PhaseSeriesName(trace.PhaseNotify))
	w.histPost = w.reg.Histogram(trace.PhaseSeriesName(trace.PhasePost))
	w.histLoop = w.reg.Histogram(`qtls_loop_iter_ns` + wl)
	w.histPollWait = w.reg.Histogram(`qtls_poll_wait_ns` + wl)
	for i, tag := range pollCauses {
		w.histBatch[i] = w.reg.Histogram(`qtls_poll_batch{cause="` + tag.String() + `"}`)
	}
	if w.cfg.CoalesceSubmits {
		w.histFlush = w.reg.Histogram(`qtls_submit_flush_batch`)
	}
	w.gInflight = w.reg.Gauge(`qtls_inflight` + wl)
	w.gActive = w.reg.Gauge(`qtls_active_conns` + wl)
	w.gConns = w.reg.Gauge(`qtls_conns` + wl)
	w.gWaiting = w.reg.Gauge(`qtls_async_waiting` + wl)
	w.gLag = w.reg.Gauge(`qtls_loop_lag_ns` + wl)
	// The heuristic thresholds (§3.3: 48 asym / 24 sym by default), so a
	// dashboard can plot Rtotal against the line it must cross.
	w.reg.Gauge("qtls_asym_threshold").Set(int64(w.cfg.AsymThreshold))
	w.reg.Gauge("qtls_sym_threshold").Set(int64(w.cfg.SymThreshold))
	st := &w.Stats
	for _, m := range []struct {
		name string
		src  *atomic.Int64
	}{
		{"qtls_accepted", &st.Accepted},
		{"qtls_handshakes", &st.Handshakes},
		{"qtls_resumed", &st.Resumed},
		{"qtls_requests", &st.Requests},
		{"qtls_bytes_out", &st.BytesOut},
		{"qtls_async_events", &st.AsyncEvents},
		{"qtls_retry_events", &st.RetryEvents},
		{"qtls_submit_flush_events", &st.SubmitFlushes},
		{`qtls_polls{cause="heuristic"}`, &st.HeuristicPolls},
		{`qtls_polls{cause="timer"}`, &st.TimerPolls},
		{`qtls_polls{cause="failover"}`, &st.FailoverPolls},
		{"qtls_deadline_wakeups", &st.DeadlineWakeups},
		{"qtls_closed_conns", &st.ClosedConns},
		{"qtls_errors", &st.Errors},
	} {
		w.mirrors = append(w.mirrors, mirroredCounter{src: m.src, ctr: w.reg.Counter(m.name)})
	}
}

// mirrorStats ships WorkerStats deltas into the shared registry. Only
// the worker goroutine calls it, so `last` needs no synchronization.
// Counters are shared across workers (no worker label), so deltas — not
// absolute stores — keep them correct.
func (w *Worker) mirrorStats() {
	for i := range w.mirrors {
		m := &w.mirrors[i]
		if v := m.src.Load(); v != m.last {
			m.ctr.Add(v - m.last)
			m.last = v
		}
	}
}

// updateGauges publishes the event-loop state the heuristic constraints
// read (§4.3): Rtotal vs the thresholds, TCactive vs live conns.
func (w *Worker) updateGauges() {
	if w.gInflight == nil {
		return
	}
	inflight := 0
	if w.eng != nil {
		inflight = w.eng.InflightTotal()
	}
	w.gInflight.Set(int64(inflight))
	w.gActive.Set(int64(w.activeConns))
	w.gConns.Set(int64(len(w.conns)))
	w.gWaiting.Set(int64(w.asyncWaiting))
}

// pollEngine drains QAT responses, attributing the poll to its trigger:
// a span (arg = batch size) plus a batch-size histogram per cause. The
// lastPoll / per-cause stat bookkeeping stays at the call sites, which
// have different rules for it.
func (w *Worker) pollEngine(tag trace.Tag) int {
	var start time.Time
	if w.tr.Active() {
		start = time.Now()
	}
	n := w.eng.Poll(0)
	if !start.IsZero() {
		w.tr.Record(trace.PhasePoll, trace.OpNone, tag, int64(n), start, time.Since(start))
		if h := w.histBatch[batchIdx(tag)]; h != nil {
			h.Observe(float64(n))
		}
	}
	return n
}

// flushSubmits pushes the engine's gathered submissions onto the request
// rings (engine.Flush: one ring lock and one doorbell per instance
// chunk). The worker calls it wherever it drains the async notification
// queue, so an op coalesced during this iteration is on the rings before
// the loop sleeps. With tracing on the flush is one PhaseFlush span whose
// Arg is the number of ops flushed, plus a flush-size histogram sample.
func (w *Worker) flushSubmits() {
	if w.eng == nil || w.eng.PendingSubmits() == 0 {
		return
	}
	var start time.Time
	if w.tr.Active() {
		start = time.Now()
	}
	n := w.eng.Flush()
	if n > 0 {
		w.Stats.SubmitFlushes.Add(1)
	}
	if !start.IsZero() {
		w.tr.Record(trace.PhaseFlush, trace.OpNone, trace.TagCoalesce, int64(n), start, time.Since(start))
		if w.histFlush != nil && n > 0 {
			w.histFlush.Observe(float64(n))
		}
	}
}

// Addr returns the worker's listening address.
func (w *Worker) Addr() string { return w.listener.Addr() }

// Engine returns the worker's QAT engine (nil for SW).
func (w *Worker) Engine() *engine.Engine { return w.eng }

// Stop asks the loop to exit and wakes it.
func (w *Worker) Stop() {
	if w.stopped.CompareAndSwap(false, true) {
		w.stopPipe.Notify()
	}
}

// Run drives the event loop until Stop. It must run on a single goroutine.
func (w *Worker) Run() {
	defer w.shutdown()
	for !w.stopped.Load() {
		// Loop profiling splits each iteration into the blocked part
		// (epoll_wait) and the busy part; the busy part is the event-loop
		// lag new events experience. Timestamping is skipped entirely
		// when tracing is off.
		tracing := w.tr.Active()
		var iterStart, busyStart time.Time
		if tracing {
			iterStart = time.Now()
		}
		events, err := w.poller.Wait(w.waitTimeout())
		if err != nil {
			w.Stats.Errors.Add(1)
			return
		}
		if tracing {
			busyStart = time.Now()
			if w.histPollWait != nil {
				w.histPollWait.ObserveDuration(busyStart.Sub(iterStart))
			}
		}
		for _, ev := range events {
			w.dispatch(ev)
		}
		// Ops paused during event dispatch are batched onto the rings now,
		// so the retrieval checks below can already see them in flight.
		w.flushSubmits()
		retrieved := 0
		if w.eng != nil && w.cfg.Polling == PollTimer {
			retrieved = w.pollEngine(trace.TagTimer)
			if retrieved > 0 {
				w.lastPoll = time.Now()
			}
			w.Stats.TimerPolls.Add(1)
		}
		if w.cfg.Polling == PollHeuristic {
			// The loop keeps executing while requests are in flight
			// (§3.4); each iteration re-evaluates the heuristic
			// constraints so responses are retrieved as soon as the
			// timeliness condition holds.
			w.heuristicCheck()
		}
		w.failoverCheck()
		w.deadlineCheck()
		w.processAsyncQueue()
		w.processRetryQueue()
		// Retried submissions and ops paused by resumed handlers after the
		// last drain round must not wait out the epoll sleep.
		w.flushSubmits()
		if w.reg != nil {
			w.updateGauges()
			w.mirrorStats()
		}
		if tracing {
			busy := time.Since(busyStart)
			if w.histLoop != nil {
				w.histLoop.ObserveDuration(busy)
			}
			if w.gLag != nil {
				w.gLag.Set(int64(busy))
			}
		}
		if len(events) == 0 && retrieved == 0 && len(w.asyncQueue) == 0 {
			// The in-flight crypto work runs on this host's CPUs (the
			// simulated accelerator's engines are goroutines, unlike the
			// paper's ASIC): when the loop has nothing to do, yield so
			// the engines get cycles instead of being starved by the
			// keep-executing spin.
			runtime.Gosched()
		}
	}
}

func (w *Worker) shutdown() {
	for _, c := range w.conns {
		c.nc.Close()
	}
	w.cleanup()
}

// waitTimeout picks the epoll timeout in milliseconds.
func (w *Worker) waitTimeout() int {
	inflight := 0
	if w.eng != nil {
		inflight = w.eng.InflightTotal()
	}
	switch {
	case len(w.asyncQueue) > 0 || len(w.retryQueue) > 0 || len(w.fdQueue) > 0:
		return 0
	case w.eng != nil && w.eng.PendingSubmits() > 0:
		// Gathered submissions must reach the rings, not wait out a sleep.
		return 0
	case w.cfg.OpTimeout > 0 && w.asyncWaiting > 0:
		// Paused offload jobs with a deadline: wake soon enough for the
		// deadline scan even if the device never responds.
		return 1
	case w.cfg.Polling == PollTimer && w.eng != nil && inflight > 0:
		// Timer polling: wake at the polling interval. Sub-millisecond
		// intervals degenerate to a busy poll, like a 10 µs polling
		// thread does.
		ms := int(w.cfg.PollInterval / time.Millisecond)
		return ms // 0 for <1ms: immediate re-poll
	case w.cfg.Polling == PollHeuristic && inflight > 0:
		// Keep the loop executing while offload requests are in flight
		// (§3.4): response retrieval is driven by the in-loop heuristic
		// checks under either notification scheme.
		return 0
	default:
		return 50 // idle: block briefly, then re-check stop flag
	}
}

func (w *Worker) dispatch(ev netpoll.Event) {
	switch ev.FD {
	case w.listener.FD():
		w.acceptAll()
	case w.stopPipe.ReadFD():
		w.stopPipe.Drain()
	default:
		if w.notifyPipe != nil && ev.FD == w.notifyPipe.ReadFD() {
			w.notifyPipe.Drain()
			w.processFDQueue()
			return
		}
		c, ok := w.conns[ev.FD]
		if !ok {
			return
		}
		if ev.Writable {
			if err := c.nc.Flush(); err != nil {
				w.closeConn(c)
				return
			}
			if c.draining && !c.nc.HasPending() {
				w.closeConn(c)
				return
			}
			w.updateWriteInterest(c)
		}
		if ev.Readable && !c.draining {
			w.onReadable(c)
		} else if ev.Closed && !ev.Readable {
			// Hang-up with nothing left to read.
			w.closeConn(c)
		}
	}
}

func (w *Worker) acceptAll() {
	for {
		nc, err := w.listener.Accept()
		if err != nil {
			return // would-block or transient
		}
		w.Stats.Accepted.Add(1)
		c := &conn{fd: nc.FD(), nc: nc, active: true}
		c.tls = minitls.Server(nc, w.tlsTmpl)
		c.handler = w.handshakeHandler
		// The connection-level async callback delivers events for every
		// offload job of this connection (one shared channel per
		// connection, §4.4).
		if w.cfg.AsyncMode != minitls.AsyncModeOff {
			c.tls.SetAsyncCallback(w.asyncEventCallback, c)
		}
		if err := w.poller.Add(c.fd, true, false); err != nil {
			nc.Close()
			continue
		}
		w.conns[c.fd] = c
		w.activeConns++
		w.invoke(c)
	}
}

// asyncEventCallback is the engine's response-callback notification hook.
// It runs on the worker goroutine (inside an engine.Poll call).
func (w *Worker) asyncEventCallback(arg any) {
	c := arg.(*conn)
	if w.tr.Active() {
		c.notifyAt = time.Now().UnixNano()
	}
	if w.cfg.Notify == NotifyKernelBypass {
		// Insert the async handler at the tail of the async queue — no
		// kernel involvement (§3.4).
		w.asyncQueue = append(w.asyncQueue, c)
		return
	}
	// FD-based: a real write syscall on the notification pipe; epoll
	// reports it on a later iteration, costing user/kernel switches.
	w.fdQueue = append(w.fdQueue, c)
	w.notifyPipe.Notify()
}

// invoke runs the connection's current handler and then the heuristic
// checks ("wherever a crypto operation may be involved or TCactive may be
// updated", §4.3).
func (w *Worker) invoke(c *conn) {
	if c.closed {
		return
	}
	c.handler(c)
	if !c.closed {
		w.updateWriteInterest(c)
	}
	w.heuristicCheck()
}

func (w *Worker) onReadable(c *conn) {
	if c.asyncPending {
		// Event disorder: a read event arrived before the expected async
		// event. Defer it; the saved handler resumes after the async
		// event (§4.2).
		c.pendingRead = true
		return
	}
	if !c.active {
		c.active = true
		w.activeConns++
	}
	w.invoke(c)
}

func (w *Worker) updateWriteInterest(c *conn) {
	want := c.nc.HasPending()
	if want != c.wantWrite {
		c.wantWrite = want
		w.poller.Mod(c.fd, true, want)
	}
}

// setAsyncPending flips the conn's paused-offload mark and keeps the
// worker's count of waiting conns (the deadline-scan gate) in step.
func (w *Worker) setAsyncPending(c *conn, pending bool) {
	if c.asyncPending == pending {
		return
	}
	c.asyncPending = pending
	if pending {
		w.asyncWaiting++
	} else {
		w.asyncWaiting--
		c.asyncDeadline = time.Time{}
	}
}

func (w *Worker) closeConn(c *conn) {
	if c.closed {
		return
	}
	c.closed = true
	w.setAsyncPending(c, false)
	if c.active {
		c.active = false
		w.activeConns--
	}
	delete(w.conns, c.fd)
	w.poller.Del(c.fd)
	c.nc.Close()
	w.Stats.ClosedConns.Add(1)
}

// suspendForAsync parks the connection while an offload job is paused.
func (w *Worker) suspendForAsync(c *conn) {
	w.setAsyncPending(c, true)
	if w.cfg.OpTimeout > 0 {
		c.asyncDeadline = time.Now().Add(w.cfg.OpTimeout)
	}
}

// resumeAsync restores the saved handler and re-enters it (§3.2
// post-processing). With tracing on it attributes the two application
// phases: notification (event queued → handler picked up) and
// post-processing (handler re-entry → yield back to the loop).
func (w *Worker) resumeAsync(c *conn) {
	if c.closed {
		return
	}
	w.setAsyncPending(c, false)
	w.Stats.AsyncEvents.Add(1)
	notifyAt := c.notifyAt
	c.notifyAt = 0
	if notifyAt != 0 && w.tr.Active() {
		now := time.Now()
		nd := time.Duration(now.UnixNano() - notifyAt)
		w.tr.Record(trace.PhaseNotify, trace.OpNone, w.notifyTag(), int64(c.fd), time.Unix(0, notifyAt), nd)
		if w.histNotify != nil {
			w.histNotify.ObserveDuration(nd)
		}
		w.invoke(c)
		pd := time.Since(now)
		w.tr.Record(trace.PhasePost, trace.OpNone, trace.TagNone, int64(c.fd), now, pd)
		if w.histPost != nil {
			w.histPost.ObserveDuration(pd)
		}
	} else {
		w.invoke(c)
	}
	if !c.closed && c.pendingRead && !c.asyncPending {
		c.pendingRead = false
		w.onReadable(c)
	}
}

// notifyTag says which notification scheme delivered the async event.
func (w *Worker) notifyTag() trace.Tag {
	if w.cfg.Notify == NotifyKernelBypass {
		return trace.TagKernelBypass
	}
	return trace.TagFD
}

func (w *Worker) processAsyncQueue() {
	// Drain the application-defined async queue at the end of the main
	// event loop (§3.4). Handlers may enqueue more events (next offload
	// op of the same connection completes during a heuristic poll), so
	// iterate until empty.
	for len(w.asyncQueue) > 0 {
		q := w.asyncQueue
		w.asyncQueue = nil
		for _, c := range q {
			w.resumeAsync(c)
		}
		// Resumed handlers typically pause on their next offload op; flush
		// the batch they formed before the next drain round so its
		// responses can feed that round.
		w.flushSubmits()
	}
}

func (w *Worker) processFDQueue() {
	q := w.fdQueue
	w.fdQueue = nil
	for _, c := range q {
		w.resumeAsync(c)
	}
}

func (w *Worker) processRetryQueue() {
	if len(w.retryQueue) == 0 {
		return
	}
	// A failed submission means the request ring was full; retrieving
	// responses frees slots before the retry.
	if w.eng != nil && w.pollEngine(trace.TagRetry) > 0 {
		w.lastPoll = time.Now()
	}
	q := w.retryQueue
	w.retryQueue = nil
	for _, c := range q {
		w.Stats.RetryEvents.Add(1)
		w.setAsyncPending(c, false)
		w.invoke(c)
	}
}

// heuristicCheck implements the efficiency and timeliness constraints of
// the heuristic polling scheme (§3.3, §4.3).
func (w *Worker) heuristicCheck() {
	if w.cfg.Polling != PollHeuristic || w.eng == nil {
		return
	}
	rTotal := w.eng.InflightTotal()
	if rTotal == 0 {
		return
	}
	threshold := w.cfg.SymThreshold
	if w.eng.InflightAsym() > 0 {
		threshold = w.cfg.AsymThreshold
	}
	// Efficiency: coalesce responses until the threshold. Timeliness:
	// poll immediately once every active connection is waiting on the
	// accelerator.
	if rTotal >= threshold || rTotal >= w.activeConns {
		w.pollEngine(trace.TagHeuristic)
		w.lastPoll = time.Now()
		w.Stats.HeuristicPolls.Add(1)
	}
}

// failoverCheck is the 5 ms failover timer: if no heuristic poll happened
// during the last interval but requests are in flight, poll once (§4.3).
func (w *Worker) failoverCheck() {
	if w.cfg.Polling != PollHeuristic || w.eng == nil {
		return
	}
	if w.eng.InflightTotal() == 0 {
		return
	}
	if time.Since(w.lastPoll) >= w.cfg.FailoverInterval {
		w.pollEngine(trace.TagFailover)
		w.lastPoll = time.Now()
		w.Stats.FailoverPolls.Add(1)
	}
}

// deadlineCheck resumes paused offload jobs whose op deadline has passed
// without a response — the graceful-degradation path for a sick device.
// The forced resume re-enters the engine, which abandons the offload and
// computes the result in software (see engine.Config.OpTimeout). If the
// engine's own deadline has not quite expired yet the job re-pauses and
// is re-resumed a millisecond later.
func (w *Worker) deadlineCheck() {
	if w.cfg.OpTimeout <= 0 || w.asyncWaiting == 0 {
		return
	}
	now := time.Now()
	var due []*conn
	for _, c := range w.conns {
		if c.asyncPending && !c.asyncDeadline.IsZero() && now.After(c.asyncDeadline) {
			due = append(due, c)
		}
	}
	for _, c := range due {
		c.asyncDeadline = now.Add(time.Millisecond)
		w.Stats.DeadlineWakeups.Add(1)
		w.resumeAsync(c)
	}
}

// --- TLS / HTTP handlers --------------------------------------------------

func (w *Worker) handshakeHandler(c *conn) {
	err := c.tls.Handshake()
	switch {
	case err == nil:
		w.Stats.Handshakes.Add(1)
		if c.tls.ConnectionState().DidResume {
			w.Stats.Resumed.Add(1)
		}
		c.handler = w.requestHandler
		w.requestHandler(c)
	case errors.Is(err, minitls.ErrWantRead):
		// Waiting for the client's next flight: the server owes this
		// connection nothing until a read event arrives, so it leaves
		// TCactive — the timeliness constraint compares in-flight
		// requests against connections actually awaiting server work
		// (§3.3: "all active connections are waiting for QAT responses").
		if c.active {
			c.active = false
			w.activeConns--
		}
	case errors.Is(err, minitls.ErrWantAsync):
		w.suspendForAsync(c)
	case errors.Is(err, minitls.ErrWantAsyncRetry):
		w.setAsyncPending(c, true)
		w.retryQueue = append(w.retryQueue, c)
	default:
		w.Stats.Errors.Add(1)
		w.closeConn(c)
	}
}

func (w *Worker) requestHandler(c *conn) {
	var buf [4096]byte
	for {
		n, err := c.tls.Read(buf[:])
		if n > 0 {
			c.reqBuf = append(c.reqBuf, buf[:n]...)
			if len(c.reqBuf) > 64<<10 {
				w.closeConn(c)
				return
			}
			if i := bytes.Index(c.reqBuf, []byte("\r\n\r\n")); i >= 0 {
				req := c.reqBuf[:i]
				rest := len(c.reqBuf) - (i + 4)
				copy(c.reqBuf, c.reqBuf[i+4:])
				c.reqBuf = c.reqBuf[:rest]
				w.serveRequest(c, req)
				return
			}
			continue
		}
		switch {
		case errors.Is(err, minitls.ErrWantRead):
			// Waiting for a request (keepalive included) with nothing
			// buffered means the connection is idle (§3.3).
			if len(c.reqBuf) == 0 && c.active {
				c.active = false
				w.activeConns--
			}
			return
		case errors.Is(err, minitls.ErrWantAsync):
			w.suspendForAsync(c)
			return
		case errors.Is(err, minitls.ErrWantAsyncRetry):
			w.setAsyncPending(c, true)
			w.retryQueue = append(w.retryQueue, c)
			return
		default:
			// EOF or fatal error.
			w.closeConn(c)
			return
		}
	}
}

// serveRequest parses the request line and headers, then prepares the
// response. "Connection: close" is honored: the response carries the
// same header and the connection is torn down after the write completes.
func (w *Worker) serveRequest(c *conn, req []byte) {
	line := req
	if i := bytes.IndexByte(line, '\r'); i >= 0 {
		line = line[:i]
	}
	fields := bytes.Fields(line)
	if len(fields) < 2 || string(fields[0]) != "GET" {
		w.closeConn(c)
		return
	}
	path := string(fields[1])
	query := ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path, query = path[:i], path[i+1:]
	}
	c.closeAfterWrite = requestWantsClose(req)
	w.Stats.Requests.Add(1)
	var body []byte
	var ok bool
	switch {
	case path == "/stub_status" && w.reg != nil:
		body, ok = w.statusBody(), true
	case path == "/metrics" && w.reg != nil:
		body, ok = w.metricsBody(), true
	case path == "/debug/trace" && w.tracer != nil:
		body, ok = w.traceBody(query), true
	default:
		body, ok = w.handler(path)
	}
	status := "200 OK"
	if !ok {
		status = "404 Not Found"
		body = []byte("not found\n")
	}
	connHdr := "keep-alive"
	if c.closeAfterWrite {
		connHdr = "close"
	}
	hdr := "HTTP/1.1 " + status + "\r\nContent-Length: " + strconv.Itoa(len(body)) +
		"\r\nConnection: " + connHdr + "\r\n\r\n"
	c.writeBody = append([]byte(hdr), body...)
	c.handler = w.writeHandler
	w.writeHandler(c)
}

// statusBody renders the stub_status page: worker activity, the shared
// fault/degradation counters, and per-instance health/breaker state.
func (w *Worker) statusBody() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Active connections: %d\n", len(w.conns))
	fmt.Fprintf(&b, "handshakes %d requests %d errors %d deadline_wakeups %d\n",
		w.Stats.Handshakes.Load(), w.Stats.Requests.Load(),
		w.Stats.Errors.Load(), w.Stats.DeadlineWakeups.Load())
	snap := w.reg.Snapshot()
	for _, name := range w.reg.Names() {
		fmt.Fprintf(&b, "%s %d\n", name, snap[name])
	}
	if w.eng != nil {
		for _, h := range w.eng.Health() {
			fmt.Fprintf(&b, "instance %d endpoint %d inflight %d leaked %d breaker %s\n",
				h.Index, h.Endpoint, h.Inflight, h.Leaked, h.Breaker)
		}
	}
	return b.Bytes()
}

// metricsBody renders the Prometheus exposition. Scrapes run on the
// worker goroutine (like every request), so refreshing the mirrored
// counters and gauges here is race-free and makes the scrape current
// even mid-iteration.
func (w *Worker) metricsBody() []byte {
	w.mirrorStats()
	w.updateGauges()
	js := asynclib.Stats()
	w.reg.Gauge("qtls_jobs_started").Set(js.Started)
	w.reg.Gauge("qtls_jobs_paused").Set(js.Paused)
	w.reg.Gauge("qtls_jobs_resumed").Set(js.Resumed)
	w.reg.Gauge("qtls_jobs_finished").Set(js.Finished)
	var b bytes.Buffer
	w.reg.WritePrometheus(&b)
	return b.Bytes()
}

// traceBody serves the /debug/trace endpoint: the most recent spans
// across all workers as a JSON array, newest last. ?n= bounds the count
// (default 256, <=0 means everything retained).
func (w *Worker) traceBody(query string) []byte {
	n := 256
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, "n="); ok {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
	}
	spans := w.tracer.Recent(n)
	if spans == nil {
		spans = []trace.Span{}
	}
	out, err := json.Marshal(spans)
	if err != nil {
		return []byte(`{"error":"trace encoding failed"}`)
	}
	return append(out, '\n')
}

// requestWantsClose scans the header block for "Connection: close"
// (ASCII case-insensitive).
func requestWantsClose(req []byte) bool {
	for _, line := range bytes.Split(req, []byte("\r\n")) {
		i := bytes.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		if !asciiEqualFold(bytes.TrimSpace(line[:i]), "connection") {
			continue
		}
		return asciiEqualFold(bytes.TrimSpace(line[i+1:]), "close")
	}
	return false
}

func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

func (w *Worker) writeHandler(c *conn) {
	n, err := c.tls.Write(c.writeBody)
	switch {
	case err == nil:
		w.Stats.BytesOut.Add(int64(n))
		c.writeBody = nil
		if c.closeAfterWrite {
			c.tls.Close() // sends close-notify into the write buffer
			if c.nc.Flush(); c.nc.HasPending() {
				// Linger until the kernel accepts the tail of the
				// response; the writable event completes the close.
				c.draining = true
				w.updateWriteInterest(c)
				return
			}
			w.closeConn(c)
			return
		}
		c.handler = w.requestHandler
		// Response done: the connection is idle until the next request
		// (keepalive), which updates TCactive (§4.3).
		if c.active {
			c.active = false
			w.activeConns--
		}
		// Data may already be buffered (pipelined request).
		if len(c.reqBuf) > 0 {
			c.active = true
			w.activeConns++
			w.requestHandler(c)
		}
	case errors.Is(err, minitls.ErrWantRead):
		// Cannot happen on the write path, but harmless.
	case errors.Is(err, minitls.ErrWantAsync):
		w.suspendForAsync(c)
	case errors.Is(err, minitls.ErrWantAsyncRetry):
		w.setAsyncPending(c, true)
		w.retryQueue = append(w.retryQueue, c)
	default:
		w.Stats.Errors.Add(1)
		w.closeConn(c)
	}
}

// ConnCount returns the number of live connections (test/diagnostic use;
// call from the worker goroutine or after Stop).
func (w *Worker) ConnCount() int { return len(w.conns) }

// String identifies the worker.
func (w *Worker) String() string {
	return fmt.Sprintf("worker-%d[%s]", w.id, w.cfg.Name)
}
