//go:build linux

package server

import (
	"time"
)

// The deadline wheel: a coarse-ticked hashed timer wheel giving every
// connection its lifecycle deadlines (handshake, request-header,
// keepalive-idle, write-stall — see offload.DeadlinePolicy) without a
// heap or a per-connection timer. Nginx hashes its event timers for the
// same reason: a worker re-arms a deadline on every request of every
// keepalive connection, so arming must cost an append, and cancellation
// must cost nothing.
//
// Cancellation is lazy: entries carry the generation the connection had
// when armed, and closing or re-arming bumps the generation, so stale
// entries are simply skipped when their slot comes around. Deadlines
// beyond the wheel horizon are clamped to the last slot and re-inserted
// on expiry until their real deadline is due. Expiry fires up to one
// tick late — lifecycle deadlines are seconds-coarse, so a 25 ms tick
// (offload.DefaultDeadlineTick) is far below their noise floor.
type deadlineWheel struct {
	tick  time.Duration
	slots [][]wheelEntry
	cur   int       // index of the slot containing `base`
	base  time.Time // start of the current tick
	live  int       // armed entries, stale (lazily cancelled) included
}

// wheelEntry pins one armed deadline: the connection plus the generation
// it had when armed. A mismatching generation marks the entry stale.
type wheelEntry struct {
	c   *conn
	gen uint64
}

// wheelSlots is the wheel size; with the default 25 ms tick the horizon
// is 256 × 25 ms = 6.4 s, and longer deadlines re-insert from the rim.
const wheelSlots = 256

func newDeadlineWheel(tick time.Duration, now time.Time) *deadlineWheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	return &deadlineWheel{
		tick:  tick,
		slots: make([][]wheelEntry, wheelSlots),
		base:  now,
	}
}

// add arms c's current deadline (c.dlAt, under generation c.dlGen).
// Deadlines are rounded up to the next tick boundary so an entry never
// fires before its time; deadlines beyond the horizon land in the rim
// slot and re-insert on expiry.
func (dw *deadlineWheel) add(c *conn) {
	ticks := int((c.dlAt.Sub(dw.base) + dw.tick - 1) / dw.tick)
	if ticks < 1 {
		ticks = 1
	}
	if ticks > len(dw.slots)-1 {
		ticks = len(dw.slots) - 1
	}
	idx := (dw.cur + ticks) % len(dw.slots)
	dw.slots[idx] = append(dw.slots[idx], wheelEntry{c: c, gen: c.dlGen})
	dw.live++
}

// advance walks the ticks elapsed since the last call, invoking expire
// for every due entry. Stale entries (closed or re-armed connections)
// are dropped; live entries whose true deadline lies beyond this tick
// (horizon clamp) are re-inserted instead of fired.
func (dw *deadlineWheel) advance(now time.Time, expire func(*conn)) {
	elapsed := int(now.Sub(dw.base) / dw.tick)
	if elapsed <= 0 {
		return
	}
	if elapsed > len(dw.slots) {
		// The loop stalled for more than a full rotation: every slot is
		// due at most once, and the dlAt re-insert check keeps entries
		// that are genuinely not due yet.
		skip := elapsed - len(dw.slots)
		dw.cur = (dw.cur + skip) % len(dw.slots)
		dw.base = dw.base.Add(time.Duration(skip) * dw.tick)
		elapsed = len(dw.slots)
	}
	for i := 0; i < elapsed; i++ {
		dw.cur = (dw.cur + 1) % len(dw.slots)
		dw.base = dw.base.Add(dw.tick)
		slot := dw.slots[dw.cur]
		if len(slot) == 0 {
			continue
		}
		dw.slots[dw.cur] = slot[:0]
		for _, e := range slot {
			dw.live--
			if e.c.closed || !e.c.dlArmed || e.c.dlGen != e.gen {
				continue // lazily cancelled
			}
			if e.c.dlAt.After(dw.base) {
				dw.add(e.c) // horizon-clamped: not due yet
				continue
			}
			expire(e.c)
		}
	}
}
