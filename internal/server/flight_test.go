//go:build linux

package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/loadgen"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// dumpCollector is a race-safe dump sink for end-to-end tests.
type dumpCollector struct {
	mu      sync.Mutex
	reasons []string
	events  [][]flight.Event
}

func (d *dumpCollector) sink(reason string, events []flight.Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reasons = append(d.reasons, reason)
	d.events = append(d.events, append([]flight.Event(nil), events...))
}

func (d *dumpCollector) snapshot() ([]string, [][]flight.Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.reasons...), d.events
}

// startFlightServer builds a server with tracing and the flight recorder
// enabled, returning the recorder and the dump collector.
func startFlightServer(t *testing.T, run RunConfig, workers int, dev *qat.Device, cfg flight.Config) (*Server, *flight.Recorder, *dumpCollector) {
	t.Helper()
	rec := trace.NewRecorder(1024)
	rec.SetEnabled(true)
	fr := flight.New(cfg)
	fr.SetEnabled(true)
	col := &dumpCollector{}
	fr.SetDumpSink(col.sink)
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(4 << 20),
		Metrics: metrics.NewRegistry(),
		Trace:   rec,
		Flight:  fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, fr, col
}

// The acceptance scenario end to end: a stalled RSA engine trips the
// instance breaker, the transition lands in the black-box journal, and
// the anomaly trigger emits a dump whose events include the faulted
// spans — while the same black box is also readable on demand through
// GET /debug/flight as JSON lines.
func TestFlightBreakerOpenDumpEndToEnd(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 4,
		RingCapacity:       128,
		Injector: fault.NewInjector(1, fault.Rule{
			Kind:     fault.Stall,
			Endpoint: fault.AnyEndpoint,
			Op:       int(qat.OpRSA),
			P:        1,
		}),
	})
	t.Cleanup(dev.Close)
	run := ConfigQTLS
	run.OpTimeout = 10 * time.Millisecond
	run.Breaker = &fault.BreakerConfig{
		Window:     8,
		MinSamples: 2,
		ProbeCount: 2,
		Cooldown:   time.Hour, // stay open for the whole test
	}
	srv, fr, col := startFlightServer(t, run, 1, dev, flight.Config{
		SlowFloor:    time.Millisecond,
		DumpCooldown: time.Hour, // exactly one anomaly dump
	})

	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        4,
		Duration:       600 * time.Millisecond,
		RequestPath:    "/1024",
		MaxConnections: 32,
	})
	if res.Connections == 0 || res.Errors > 0 {
		t.Fatalf("load failed under stalled engine: %s", res)
	}

	// Trigger path 1: the breaker-open anomaly dump fired on its own.
	if !waitUntil(t, 2*time.Second, func() bool { return fr.Dumps() >= 1 }) {
		t.Fatalf("no anomaly dump; journal: %+v", fr.Events(0))
	}
	reasons, dumps := col.snapshot()
	if len(reasons) == 0 || reasons[0] != "breaker-open" {
		t.Fatalf("dump reasons = %v, want breaker-open first", reasons)
	}
	kinds := map[flight.Kind]int{}
	var sawOpen bool
	for _, e := range dumps[0] {
		kinds[e.Kind]++
		if e.Kind == flight.KindBreaker && e.Code == uint8(fault.StateOpen) {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatalf("dump has no breaker-open transition: %v", kinds)
	}
	if kinds[flight.KindFault] == 0 {
		t.Fatalf("dump has no injected-fault events: %v", kinds)
	}
	// The slow spans from the stalled ops land in the journal as their
	// timeouts settle; the breaker-open dump can legitimately race ahead
	// of the first one, so wait on the journal itself.
	if !waitUntil(t, 2*time.Second, func() bool {
		for _, e := range fr.Events(0) {
			if e.Kind == flight.KindSlowSpan {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("journal has no slow spans above the %v floor", time.Millisecond)
	}

	// Trigger path 2: the same black box over GET /debug/flight, as
	// parseable JSON lines with the windowed header.
	body := fetchPath(t, srv.Addr(), "/debug/flight?n=512")
	d, err := flight.ReadDump(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/debug/flight not parseable: %v\n%s", err, body)
	}
	if d.Header.Reason != "manual" {
		t.Fatalf("dump header = %+v, want reason=manual", d.Header)
	}
	if len(d.Events) == 0 {
		t.Fatal("/debug/flight returned no events")
	}
	var endpointOpen, endpointFault bool
	for _, e := range d.Events {
		if e.Kind == "breaker" && e.Code == "open" {
			endpointOpen = true
		}
		if e.Kind == "fault" && e.Code == "stall" {
			endpointFault = true
		}
	}
	if !endpointOpen || !endpointFault {
		t.Fatalf("endpoint dump missing breaker-open (%v) or stall fault (%v):\n%s",
			endpointOpen, endpointFault, body)
	}

	// The windowed signal plane is live on /metrics alongside the
	// lifetime series, under the _w60s suffix.
	page := fetchPath(t, srv.Addr(), "/metrics")
	for _, want := range []string{
		"# TYPE qtls_phase_ns_w60s summary",
		`qtls_phase_ns_w60s{phase="retrieve",quantile="0.99"}`,
		"# TYPE qtls_fault_w60s_count gauge",
		"qtls_flight_events_total",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}
	if v := metricValue(t, page, `qtls_phase_ns_w60s_count{phase="retrieve"}`); v <= 0 {
		t.Fatalf("windowed retrieve count = %v, want > 0", v)
	}
}

// /debug/flight scraped concurrently while handshake load runs and
// manual dumps fire: under -race this is the journal seqlock's
// reader/writer race test at the system level.
func TestFlightScrapeAndDumpUnderLoad(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
	t.Cleanup(dev.Close)
	srv, fr, _ := startFlightServer(t, ConfigQTLS, 2, dev, flight.Config{
		SlowFloor: 0, // journal every span: maximal writer pressure
	})
	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			loadgen.STime(loadgen.STimeOptions{
				Addr:           srv.Addr(),
				Clients:        4,
				Duration:       150 * time.Millisecond,
				RequestPath:    "/1024",
				MaxConnections: 32,
			})
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				body, err := tryFetchPath(srv.Addr(), "/debug/flight?n=128")
				if err != nil {
					continue // transient connect races with load churn
				}
				if _, err := flight.ReadDump(strings.NewReader(body)); err != nil {
					t.Errorf("scrape %d not parseable: %v", j, err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			fr.Trigger("manual")
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	loadWG.Wait()
	if fr.Dumps() < 10 {
		t.Fatalf("manual triggers produced %d dumps, want >= 10", fr.Dumps())
	}
}

// Without a flight recorder the endpoint 404s like /debug/trace does
// without a tracer.
func TestDebugFlightWithoutRecorder(t *testing.T) {
	srv, _ := startServer(t, ConfigQTLS, 1, nil)
	if body := fetchPath(t, srv.Addr(), "/debug/flight"); !strings.Contains(body, "not found") {
		t.Fatalf("/debug/flight without recorder = %q, want 404 body", body)
	}
}
