//go:build linux

package server

import (
	"testing"
	"time"

	"qtls/internal/flight"
	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// The coalesced notifier serves identically to fd and kernel-bypass:
// every async event is delivered exactly once, handshakes complete, and
// the heuristic polls still fire. This is the new scheme's end-to-end
// guarantee — the Notifier seam changed delivery batching, not delivery.
func TestCoalescedNotifierServes(t *testing.T) {
	run := ConfigQATAH
	run.Name = "QAT+AH/coalesced"
	run.Notify = NotifyCoalesced
	srv, _ := startServer(t, run, 1, nil)
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        8,
		Duration:       400 * time.Millisecond,
		RequestPath:    "/2048",
		MaxConnections: 48,
	})
	if res.Connections == 0 {
		t.Fatalf("no connections completed: %s", res)
	}
	st := srv.Stats()
	if st.Handshakes == 0 || st.Requests == 0 {
		t.Fatalf("server stats empty: %+v", st)
	}
	// ECDHE-RSA: 7 async events per full handshake, regardless of how
	// many pipe writes carried them.
	if st.AsyncEvents < st.Handshakes*7 {
		t.Fatalf("async events %d < 7×handshakes %d", st.AsyncEvents, st.Handshakes)
	}
	if st.HeuristicPolls == 0 {
		t.Fatalf("no heuristic polls under the coalesced notifier: %+v", st)
	}
}

// The adaptive controller end to end: a QTLS server with the controller
// armed serves load, the walked thresholds stay inside the configured
// clamps, and the labeled threshold gauges track the controller.
func TestAdaptivePollEndToEnd(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 3, EnginesPerEndpoint: 4, RingCapacity: 128})
	t.Cleanup(dev.Close)
	run := ConfigQTLS
	run.Name = "QTLS/adaptive"
	run.AdaptivePoll = &offload.AdaptiveConfig{
		MinAsym: 4, MaxAsym: 96,
		MinSym: 2, MaxSym: 48,
		Interval:   2 * time.Millisecond,
		MinSamples: 8,
	}
	srv, fr, _ := startFlightServer(t, run, 1, dev, flight.Config{
		Buckets: 8,
		Bucket:  100 * time.Millisecond,
	})
	res := loadgen.STime(loadgen.STimeOptions{
		Addr:           srv.Addr(),
		Clients:        8,
		Duration:       600 * time.Millisecond,
		RequestPath:    "/2048",
		MaxConnections: 64,
	})
	if res.Connections == 0 {
		t.Fatalf("no connections completed: %s", res)
	}
	st := srv.Stats()
	if st.Handshakes == 0 || st.HeuristicPolls == 0 {
		t.Fatalf("server stats empty: %+v", st)
	}
	for _, w := range srv.Workers() {
		asym, sym := w.PollThresholds()
		if asym < 4 || asym > 96 || sym < 2 || sym > 48 {
			t.Fatalf("%v: thresholds %d/%d escaped the clamps", w, asym, sym)
		}
	}
	// The retrieve-phase feedback window must have been fed — without it
	// the controller is flying blind and the whole loop is dead wiring.
	// (startFlightServer enables tracing, the feedback's source.)
	if fr.PhaseWindow(0) == nil {
		t.Fatal("no phase windows on the recorder")
	}
	reg := srv.Metrics()
	g, ok := reg.LookupGauge(`qtls_poll_threshold{class="asym"}`)
	if !ok {
		t.Fatal("qtls_poll_threshold{class=\"asym\"} gauge missing")
	}
	if v := g.Value(); v < 4 || v > 96 {
		t.Fatalf("asym threshold gauge = %d, outside clamps", v)
	}
	if _, ok := reg.LookupGauge(`qtls_poll_threshold{class="sym"}`); !ok {
		t.Fatal("qtls_poll_threshold{class=\"sym\"} gauge missing")
	}
}

// Arming the controller without its feedback source is a configuration
// error, not a silent no-op.
func TestAdaptivePollRequiresRecorders(t *testing.T) {
	run := ConfigQTLS
	run.AdaptivePoll = &offload.AdaptiveConfig{}
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1, EnginesPerEndpoint: 4, RingCapacity: 128})
	t.Cleanup(dev.Close)
	_, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Run:     run,
		TLS: &minitls.Config{
			Identity:     identity(t),
			CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA},
		},
		Device:  dev,
		Handler: SizedBodyHandler(1 << 20),
	})
	if err == nil {
		t.Fatal("New accepted adaptive polling without trace/flight recorders")
	}
}
