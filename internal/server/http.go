//go:build linux

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"qtls/internal/asynclib"
	"qtls/internal/minitls"
	"qtls/internal/trace"
)

// TLS / HTTP handlers and the built-in endpoints (stub_status, /metrics,
// /debug/trace), plus the header-parsing helpers they lean on.

func (w *Worker) handshakeHandler(c *conn) {
	err := c.tls.Handshake()
	switch {
	case err == nil:
		w.Stats.Handshakes.Add(1)
		if c.tls.ConnectionState().DidResume {
			w.Stats.Resumed.Add(1)
		}
		if w.rec != nil {
			// Record-path mode switch: hand the write direction to the
			// offloaded record engine now that the keys exist (§kTLS).
			w.installStream(c)
		}
		c.handler = w.requestHandler
		w.requestHandler(c)
	case errors.Is(err, minitls.ErrWantRead):
		// Waiting for the client's next flight: the server owes this
		// connection nothing until a read event arrives, so it leaves
		// TCactive — the timeliness constraint compares in-flight
		// requests against connections actually awaiting server work
		// (§3.3: "all active connections are waiting for QAT responses").
		if c.active {
			c.active = false
			w.activeConns--
		}
	case errors.Is(err, minitls.ErrWantAsync):
		w.suspendForAsync(c)
	case errors.Is(err, minitls.ErrWantAsyncRetry):
		w.setAsyncPending(c, true)
		w.retryQueue = append(w.retryQueue, c)
	default:
		w.Stats.Errors.Add(1)
		w.closeConn(c)
	}
}

func (w *Worker) requestHandler(c *conn) {
	var buf [4096]byte
	for {
		n, err := c.tls.Read(buf[:])
		if n > 0 {
			c.reqBuf = append(c.reqBuf, buf[:n]...)
			if len(c.reqBuf) > 64<<10 {
				w.closeConn(c)
				return
			}
			if i := bytes.Index(c.reqBuf, []byte("\r\n\r\n")); i >= 0 {
				req := c.reqBuf[:i]
				rest := len(c.reqBuf) - (i + 4)
				copy(c.reqBuf, c.reqBuf[i+4:])
				c.reqBuf = c.reqBuf[:rest]
				w.serveRequest(c, req)
				return
			}
			continue
		}
		switch {
		case errors.Is(err, minitls.ErrWantRead):
			// Waiting for a request (keepalive included) with nothing
			// buffered means the connection is idle (§3.3).
			if len(c.reqBuf) == 0 && c.active {
				c.active = false
				w.activeConns--
			}
			return
		case errors.Is(err, minitls.ErrWantAsync):
			w.suspendForAsync(c)
			return
		case errors.Is(err, minitls.ErrWantAsyncRetry):
			w.setAsyncPending(c, true)
			w.retryQueue = append(w.retryQueue, c)
			return
		default:
			// EOF or fatal error.
			w.closeConn(c)
			return
		}
	}
}

// serveRequest parses the request line and headers, then prepares the
// response. "Connection: close" is honored: the response carries the
// same header and the connection is torn down after the write completes.
func (w *Worker) serveRequest(c *conn, req []byte) {
	line := req
	if i := bytes.IndexByte(line, '\r'); i >= 0 {
		line = line[:i]
	}
	fields := bytes.Fields(line)
	if len(fields) < 2 || string(fields[0]) != "GET" {
		w.closeConn(c)
		return
	}
	path := string(fields[1])
	query := ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path, query = path[:i], path[i+1:]
	}
	c.closeAfterWrite = requestWantsClose(req)
	if !c.closeAfterWrite {
		if w.draining.Load() {
			// Draining: serve the admitted request, then close cleanly
			// instead of offering keepalive on a dying worker.
			c.closeAfterWrite = true
		} else if w.shedKeepalive(c) {
			// Overloaded: the response still completes, but the client is
			// told to reconnect — which the accept-time shed then rejects
			// while pressure lasts.
			c.closeAfterWrite = true
		}
	}
	w.Stats.Requests.Add(1)
	var body []byte
	var ok bool
	switch {
	case path == "/stub_status" && w.reg != nil:
		body, ok = w.statusBody(), true
	case path == "/metrics" && w.reg != nil:
		body, ok = w.metricsBody(), true
	case path == "/debug/trace" && w.tracer != nil:
		body, ok = w.traceBody(query), true
	case path == "/debug/flight" && w.flight != nil:
		body, ok = w.flightBody(query), true
	default:
		body, ok = w.handler(path)
	}
	status := "200 OK"
	if !ok {
		status = "404 Not Found"
		body = []byte("not found\n")
	}
	connHdr := "keep-alive"
	if c.closeAfterWrite {
		connHdr = "close"
	}
	hdr := "HTTP/1.1 " + status + "\r\nContent-Length: " + strconv.Itoa(len(body)) +
		"\r\nConnection: " + connHdr + "\r\n\r\n"
	if c.stream != nil {
		// Offloaded record path: the body is sealed in place, never
		// copied into a staging buffer (recordpath.go).
		w.serveRecord(c, hdr, body)
		return
	}
	c.writeBody = append([]byte(hdr), body...)
	c.handler = w.writeHandler
	w.writeHandler(c)
}

func (w *Worker) writeHandler(c *conn) {
	n, err := c.tls.Write(c.writeBody)
	switch {
	case err == nil:
		w.Stats.BytesOut.Add(int64(n))
		c.writeBody = nil
		if c.closeAfterWrite {
			c.tls.Close() // sends close-notify into the write buffer
			if c.nc.Flush(); c.nc.HasPending() {
				// Linger until the kernel accepts the tail of the
				// response; the writable event completes the close.
				c.draining = true
				w.updateWriteInterest(c)
				return
			}
			w.closeConn(c)
			return
		}
		c.handler = w.requestHandler
		// Response done: the connection is idle until the next request
		// (keepalive), which updates TCactive (§4.3).
		if c.active {
			c.active = false
			w.activeConns--
		}
		// Data may already be buffered (pipelined request).
		if len(c.reqBuf) > 0 {
			c.active = true
			w.activeConns++
			w.requestHandler(c)
		}
	case errors.Is(err, minitls.ErrWantRead):
		// Cannot happen on the write path, but harmless.
	case errors.Is(err, minitls.ErrWantAsync):
		w.suspendForAsync(c)
	case errors.Is(err, minitls.ErrWantAsyncRetry):
		w.setAsyncPending(c, true)
		w.retryQueue = append(w.retryQueue, c)
	default:
		w.Stats.Errors.Add(1)
		w.closeConn(c)
	}
}

// statusBody renders the stub_status page: worker activity, the shared
// fault/degradation counters, and per-instance health/breaker state.
func (w *Worker) statusBody() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Active connections: %d\n", len(w.conns))
	fmt.Fprintf(&b, "handshakes %d requests %d errors %d deadline_wakeups %d\n",
		w.Stats.Handshakes.Load(), w.Stats.Requests.Load(),
		w.Stats.Errors.Load(), w.Stats.DeadlineWakeups.Load())
	drain := 0
	if w.draining.Load() {
		drain = 1
	}
	fmt.Fprintf(&b, "shed_accept %d shed_keepalive %d drain_active %d\n",
		w.Stats.ShedAccepts.Load(), w.Stats.ShedKeepalive.Load(), drain)
	snap := w.reg.Snapshot()
	for _, name := range w.reg.Names() {
		fmt.Fprintf(&b, "%s %d\n", name, snap[name])
	}
	if w.eng != nil {
		for _, h := range w.eng.Health() {
			fmt.Fprintf(&b, "instance %d endpoint %d inflight %d leaked %d breaker %s\n",
				h.Index, h.Endpoint, h.Inflight, h.Leaked, h.Breaker)
		}
	}
	return b.Bytes()
}

// metricsBody renders the Prometheus exposition. Scrapes run on the
// worker goroutine (like every request), so refreshing the mirrored
// counters and gauges here is race-free and makes the scrape current
// even mid-iteration.
func (w *Worker) metricsBody() []byte {
	w.mirrorStats()
	w.updateGauges()
	js := asynclib.Stats()
	w.reg.Gauge("qtls_jobs_started").Set(js.Started)
	w.reg.Gauge("qtls_jobs_paused").Set(js.Paused)
	w.reg.Gauge("qtls_jobs_resumed").Set(js.Resumed)
	w.reg.Gauge("qtls_jobs_finished").Set(js.Finished)
	var b bytes.Buffer
	w.reg.WritePrometheus(&b)
	return b.Bytes()
}

// traceBody serves the /debug/trace endpoint: the most recent spans
// across all workers as a JSON array, newest last. ?n= bounds the count
// (default 256, <=0 means everything retained).
func (w *Worker) traceBody(query string) []byte {
	n := 256
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, "n="); ok {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
	}
	spans := w.tracer.Recent(n)
	if spans == nil {
		spans = []trace.Span{}
	}
	out, err := json.Marshal(spans)
	if err != nil {
		return []byte(`{"error":"trace encoding failed"}`)
	}
	return append(out, '\n')
}

// flightBody serves the /debug/flight endpoint: a manual black-box dump
// in the same JSON-lines format the anomaly trigger emits — one header
// line with the windowed phase summaries, then the journaled events,
// oldest first. ?n= bounds the event count (default everything
// retained). Reading is lock-free on the writer side: journal snapshots
// skip torn slots, so scraping under load never blocks a worker.
func (w *Worker) flightBody(query string) []byte {
	n := 0
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, "n="); ok {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
	}
	var b bytes.Buffer
	if err := w.flight.WriteDump(&b, "manual", n); err != nil {
		return []byte("{\"error\":\"flight dump failed\"}\n")
	}
	return b.Bytes()
}

// requestWantsClose reports whether the request headers ask for the
// connection to be torn down after the response: any Connection header
// whose comma-separated option list contains the "close" token (ASCII
// case-insensitive). Obs-fold continuation lines (leading SP/HTAB)
// extend the previous header's value, and every Connection line counts,
// not just the first.
func requestWantsClose(req []byte) bool {
	lines := bytes.Split(req, []byte("\r\n"))
	inConnection := false
	for i, line := range lines {
		if i == 0 {
			continue // request line
		}
		if len(line) > 0 && (line[0] == ' ' || line[0] == '\t') {
			// Folded continuation of the previous header field.
			if inConnection && connectionValueHasClose(line) {
				return true
			}
			continue
		}
		inConnection = false
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		if !asciiEqualFold(bytes.TrimSpace(line[:colon]), "connection") {
			continue
		}
		inConnection = true
		if connectionValueHasClose(line[colon+1:]) {
			return true
		}
	}
	return false
}

// connectionValueHasClose scans one fragment of a Connection header value
// for the "close" option among its comma-separated tokens.
func connectionValueHasClose(v []byte) bool {
	for _, tok := range bytes.Split(v, []byte{','}) {
		if asciiEqualFold(bytes.TrimSpace(tok), "close") {
			return true
		}
	}
	return false
}

func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}
