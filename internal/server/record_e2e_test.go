//go:build linux

package server

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/loadgen"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// End-to-end coverage of the post-handshake record-path offload: a
// plain software client (loadgen/minitls) against servers whose write
// direction runs through the record engine. Run by the record-e2e CI
// job under -race.

func startRecordServer(t *testing.T, run RunConfig, workers int, tlsExtra func(*minitls.Config)) (*Server, *qat.Device) {
	t.Helper()
	var dev *qat.Device
	if run.UseQAT {
		dev = qat.NewDevice(qat.DeviceSpec{
			Endpoints:          3,
			EnginesPerEndpoint: 4,
			RingCapacity:       128,
			SymBaseTime:        20 * time.Microsecond,
			SymPerKB:           2 * time.Microsecond,
		})
		t.Cleanup(dev.Close)
	}
	tlsCfg := &minitls.Config{
		Identity:     identity(t),
		CipherSuites: []uint16{minitls.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, minitls.TLS_RSA_WITH_AES_128_CBC_SHA},
	}
	if tlsExtra != nil {
		tlsExtra(tlsCfg)
	}
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Run:     run,
		TLS:     tlsCfg,
		Device:  dev,
		Handler: SizedBodyHandler(4 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, dev
}

// TestRecordPathBulkTransfer moves bulk data through the offloaded
// record path in every mode and verifies byte-exact delivery to a
// software client, plus the op counters splitting as the policy says.
func TestRecordPathBulkTransfer(t *testing.T) {
	cases := []struct {
		name        string
		mode        offload.RecordMode
		wantOffload bool
		wantSW      bool
	}{
		{"offload", offload.RecordOffload, true, false},
		{"adaptive", offload.RecordAdaptive, true, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := ConfigQTLS
			run.RecordMode = tc.mode
			srv, _ := startRecordServer(t, run, 2, nil)
			res := loadgen.Bulk(loadgen.BulkOptions{
				Addr:    srv.Addr(),
				Clients: 4,
				// 1 KB falls below the adaptive threshold, 64 KB above.
				Sizes:       []int{1024, 64 << 10},
				Duration:    2 * time.Second,
				MaxRequests: 40,
			})
			if res.Requests < 20 {
				t.Fatalf("too few bulk requests completed: %s", res)
			}
			if res.Errors > 0 || res.ShortIO > 0 {
				t.Fatalf("bulk transfer failed through record path: %s", res)
			}
			srv.Stop()
			st := srv.RecordStats()
			if st.Records == 0 || st.Bytes == 0 {
				t.Fatalf("record engine saw no traffic: %s", st)
			}
			if tc.wantOffload && st.OffloadOps == 0 {
				t.Fatalf("no offloaded record ops in %s mode: %s", tc.name, st)
			}
			if tc.wantSW && st.SoftwareOps == 0 {
				t.Fatalf("adaptive mode never sealed below threshold: %s", st)
			}
			if !tc.wantSW && st.SoftwareOps > st.OffloadOps {
				// Offload-always mode: software seals only from close-notify
				// alerts and degraded submissions, never the majority.
				t.Fatalf("offload mode mostly sealed in software: %s", st)
			}
			snap := srv.Metrics().Snapshot()
			if snap["qtls_record_bytes"] == 0 {
				t.Fatal("qtls_record_bytes metric not exported")
			}
			if tc.wantOffload && snap["qtls_record_offload_ops"] == 0 {
				t.Fatal("qtls_record_offload_ops metric not exported")
			}
		})
	}
}

// TestRecordPathTLS13 repeats the transfer over TLS 1.3 (GCM codec) —
// both negotiated suites must survive the key export and hand-off.
func TestRecordPathTLS13(t *testing.T) {
	run := ConfigQTLS
	run.RecordMode = offload.RecordOffload
	srv, _ := startRecordServer(t, run, 1, func(cfg *minitls.Config) {
		cfg.CipherSuites = nil
		cfg.MaxVersion = minitls.VersionTLS13
	})
	res := loadgen.Bulk(loadgen.BulkOptions{
		Addr:        srv.Addr(),
		Clients:     2,
		Sizes:       []int{32 << 10},
		TLS:         &minitls.Config{MaxVersion: minitls.VersionTLS13},
		Duration:    2 * time.Second,
		MaxRequests: 10,
	})
	if res.Requests < 5 || res.Errors > 0 || res.ShortIO > 0 {
		t.Fatalf("TLS 1.3 record path failed: %s", res)
	}
}

// TestRecordPathSoftwareEngine runs the record engine without a QAT
// device (SW configuration + record mode): everything seals on the
// worker core but through the stream machinery, including close-notify.
func TestRecordPathSoftwareEngine(t *testing.T) {
	run := ConfigSW
	run.RecordMode = offload.RecordOffload // no device → software seals
	srv, _ := startRecordServer(t, run, 1, nil)
	res := loadgen.Bulk(loadgen.BulkOptions{
		Addr:        srv.Addr(),
		Clients:     2,
		Sizes:       []int{16 << 10},
		Duration:    time.Second,
		MaxRequests: 8,
	})
	if res.Requests < 4 || res.Errors > 0 || res.ShortIO > 0 {
		t.Fatalf("software record engine failed: %s", res)
	}
	srv.Stop()
	st := srv.RecordStats()
	if st.OffloadOps != 0 || st.SoftwareOps == 0 {
		t.Fatalf("device-less engine should seal all-software: %s", st)
	}
}

// TestRecordPathKeepaliveAndClose drives one connection by hand:
// several keepalive responses through the stream, then Connection:
// close — the close-notify must arrive through the record plane and
// read as an orderly EOF.
func TestRecordPathKeepaliveAndClose(t *testing.T) {
	run := ConfigQTLS
	run.RecordMode = offload.RecordOffload
	srv, _ := startRecordServer(t, run, 1, nil)

	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(tc, 64<<10)
	for i := 0; i < 3; i++ {
		n, err := requestOnce(tc, br, "/8192", false)
		if err != nil {
			t.Fatalf("keepalive request %d: %v", i, err)
		}
		if n != 8192 {
			t.Fatalf("request %d returned %d bytes, want 8192", i, n)
		}
	}
	n, err := requestOnce(tc, br, "/8192", true)
	if err != nil || n != 8192 {
		t.Fatalf("final request: n=%d err=%v", n, err)
	}
	// The server closes after the response: expect close-notify then EOF.
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("expected EOF after Connection: close response")
	}
	if !tc.CloseNotifyReceived() {
		t.Fatal("close-notify did not arrive through the record stream")
	}
}

// TestRecordPathDrainUnderLoad shuts the server down gracefully while
// bulk transfers are in flight: admitted responses complete through the
// record engine, the drain interacts with stream-pending state, and no
// transfer ends in a hard error.
func TestRecordPathDrainUnderLoad(t *testing.T) {
	run := ConfigQTLS
	run.RecordMode = offload.RecordOffload
	srv, _ := startRecordServer(t, run, 2, nil)

	done := make(chan loadgen.BulkResult, 1)
	go func() {
		done <- loadgen.Bulk(loadgen.BulkOptions{
			Addr:     srv.Addr(),
			Clients:  4,
			Sizes:    []int{64 << 10},
			Duration: 3 * time.Second,
		})
	}()
	time.Sleep(300 * time.Millisecond) // let transfers start
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown timed out with record path active: %v", err)
	}
	res := <-done
	if res.Requests == 0 {
		t.Fatalf("no requests completed before drain: %s", res)
	}
	if res.Errors > res.Requests/4+1 {
		t.Fatalf("drain produced hard errors: %s", res)
	}
}

// TestRecordPathKeepaliveDeadline lets a record-path connection idle
// past the keepalive deadline: the wheel must close it gracefully, with
// the close-notify sealed by the stream (the detached conn cannot).
func TestRecordPathKeepaliveDeadline(t *testing.T) {
	run := ConfigQTLS
	run.RecordMode = offload.RecordOffload
	run.Deadlines = offload.DeadlinePolicy{
		Keepalive: 300 * time.Millisecond,
		Tick:      20 * time.Millisecond,
	}
	srv, _ := startRecordServer(t, run, 1, nil)

	raw, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	tc := minitls.ClientConn(raw, &minitls.Config{})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(tc, 64<<10)
	if n, err := requestOnce(tc, br, "/16384", false); err != nil || n != 16384 {
		t.Fatalf("request: n=%d err=%v", n, err)
	}
	// Idle past the deadline; the server should close-notify us.
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("expected orderly close after keepalive deadline")
	}
	if !tc.CloseNotifyReceived() {
		t.Fatal("keepalive deadline close lacked a record-stream close-notify")
	}
}

// TestRecordPathFaultFallback injects endpoint resets into the device:
// transfers must complete byte-exact via software re-seals, with the
// fallback counters proving the degraded path ran.
func TestRecordPathFaultFallback(t *testing.T) {
	inj := fault.NewInjector(7, fault.Rule{
		Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: int(qat.OpSym),
		P: 0.05,
	})
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          3,
		EnginesPerEndpoint: 4,
		RingCapacity:       128,
		Injector:           inj,
	})
	t.Cleanup(dev.Close)
	run := ConfigQTLS
	run.RecordMode = offload.RecordOffload
	srv, err := New(Options{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Run:     run,
		TLS:     &minitls.Config{Identity: identity(t)},
		Device:  dev,
		Handler: SizedBodyHandler(4 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	res := loadgen.Bulk(loadgen.BulkOptions{
		Addr:        srv.Addr(),
		Clients:     4,
		Sizes:       []int{32 << 10},
		Duration:    3 * time.Second,
		MaxRequests: 60,
	})
	if res.Requests < 30 {
		t.Fatalf("too few requests under fault injection: %s", res)
	}
	if res.Errors > 0 || res.ShortIO > 0 {
		t.Fatalf("device faults corrupted transfers: %s", res)
	}
	srv.Stop()
	if st := srv.RecordStats(); st.Fallbacks == 0 {
		t.Logf("note: no fallbacks triggered this run (injection is probabilistic): %s", st)
	}
}

// requestOnce issues one GET (optionally Connection: close) and reads
// the body fully, returning its length.
func requestOnce(tc *minitls.Conn, br *bufio.Reader, path string, close bool) (int, error) {
	req := "GET " + path + " HTTP/1.1\r\nHost: qtls\r\n"
	if close {
		req += "Connection: close\r\n"
	}
	req += "\r\n"
	if _, err := tc.Write([]byte(req)); err != nil {
		return 0, err
	}
	contentLength := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = trimCRLFe2e(line)
		if line == "" {
			break
		}
		if v, ok := cutFold(line, "content-length:"); ok {
			n := 0
			for _, ch := range v {
				if ch < '0' || ch > '9' {
					continue
				}
				n = n*10 + int(ch-'0')
			}
			contentLength = n
		}
	}
	if contentLength < 0 {
		return 0, errNoLength
	}
	got := 0
	buf := make([]byte, 32<<10)
	for got < contentLength {
		want := contentLength - got
		if want > len(buf) {
			want = len(buf)
		}
		n, err := br.Read(buf[:want])
		got += n
		if err != nil {
			return got, err
		}
	}
	return got, nil
}

var errNoLength = &net.AddrError{Err: "response without Content-Length", Addr: ""}

func trimCRLFe2e(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

func cutFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return "", false
	}
	for i := 0; i < len(prefix); i++ {
		a, b := s[i], prefix[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if a != b {
			return "", false
		}
	}
	return s[len(prefix):], true
}
