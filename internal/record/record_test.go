package record

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"qtls/internal/fault"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
)

// testKM returns GCM key material with an arbitrary starting sequence
// number, standing in for keys exported from a finished handshake.
func testKM() minitls.KeyMaterial {
	return minitls.KeyMaterial{
		Key: bytes.Repeat([]byte{0x11}, 16),
		IV:  bytes.Repeat([]byte{0x22}, 12),
		Seq: 7, // a handshake always consumes some records first
	}
}

// captureSink copies every record it receives (the engine's buffers are
// recycled after the call returns).
type captureSink struct {
	records [][]byte
	err     error
}

func (cs *captureSink) WriteRecord(rec []byte) error {
	if cs.err != nil {
		return cs.err
	}
	cs.records = append(cs.records, append([]byte(nil), rec...))
	return nil
}

// openAll decrypts the sink's records in order with a fresh codec,
// starting from the key material's sequence number. Any reordering,
// dropped record, or seq discontinuity fails authentication, so a clean
// roundtrip is also an ordering proof.
func openAll(t *testing.T, km minitls.KeyMaterial, records [][]byte) (types []uint8, payloads [][]byte) {
	t.Helper()
	cd, err := minitls.NewRecordCodec(km)
	if err != nil {
		t.Fatal(err)
	}
	seq := km.Seq
	for i, rec := range records {
		if len(rec) < minitls.RecordHeaderLen {
			t.Fatalf("record %d: short wire record (%d bytes)", i, len(rec))
		}
		typ, payload, err := cd.Open(seq, rec[0], rec[minitls.RecordHeaderLen:])
		if err != nil {
			t.Fatalf("record %d (seq %d): open: %v", i, seq, err)
		}
		seq++
		types = append(types, typ)
		payloads = append(payloads, append([]byte(nil), payload...))
	}
	return types, payloads
}

// drain polls until the stream has delivered everything or the deadline
// expires.
func drain(t *testing.T, e *Engine, s *Stream) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for (s.Pending() > 0 || e.Inflight() > 0) && time.Now().Before(deadline) {
		e.Poll()
		time.Sleep(50 * time.Microsecond)
	}
	if s.Pending() > 0 || e.Inflight() > 0 {
		t.Fatalf("stream did not drain: pending=%d inflight=%d err=%v",
			s.Pending(), e.Inflight(), s.Err())
	}
}

func TestStreamSoftwarePath(t *testing.T) {
	km := testKM()
	reg := metrics.NewRegistry()
	e := New(Config{Policy: offload.RecordPolicy{Mode: offload.RecordOffload}, Metrics: reg})
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'s'}, 2*minitls.MaxPlaintext+500)
	if err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	// No instance: software seals complete inline, nothing pends.
	if s.Pending() != 0 {
		t.Fatalf("software path left %d records pending", s.Pending())
	}
	if len(sink.records) != 3 {
		t.Fatalf("got %d records, want 3", len(sink.records))
	}
	_, payloads := openAll(t, km, sink.records)
	if !bytes.Equal(bytes.Join(payloads, nil), payload) {
		t.Fatal("roundtrip mismatch")
	}
	st := e.Stats()
	if st.SoftwareOps != 3 || st.OffloadOps != 0 {
		t.Fatalf("stats = %+v, want 3 software / 0 offload", st)
	}
	if st.Bytes != int64(len(payload)) {
		t.Fatalf("stats.Bytes = %d, want %d", st.Bytes, len(payload))
	}
	if got := reg.Counter("qtls_record_bytes").Value(); got != int64(len(payload)) {
		t.Fatalf("qtls_record_bytes = %d, want %d", got, len(payload))
	}
}

// TestStreamOffloadInOrder submits a burst whose first record is much
// slower to seal than the rest (byte-calibrated service time) and
// verifies the sink still observes sequence order: the in-order pending
// queue must hold the fast completions behind the slow head.
func TestStreamOffloadInOrder(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:          1,
		EnginesPerEndpoint: 8, // burst runs fully parallel
		SymPerKB:           200 * time.Microsecond,
	})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	km := testKM()
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordOffload}})
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}

	// Head record: 16 KB (~3.2 ms occupancy). Tail: five 1 KB records
	// (~0.2 ms each) that will complete long before the head.
	var want []byte
	head := bytes.Repeat([]byte{'H'}, minitls.MaxPlaintext)
	if err := s.WriteRecord(minitls.RecordTypeApplicationData, head); err != nil {
		t.Fatal(err)
	}
	want = append(want, head...)
	for i := 0; i < 5; i++ {
		small := bytes.Repeat([]byte{byte('a' + i)}, 1024)
		if err := s.WriteRecord(minitls.RecordTypeApplicationData, small); err != nil {
			t.Fatal(err)
		}
		want = append(want, small...)
	}
	if e.Inflight() == 0 {
		t.Fatal("nothing in flight after offloaded writes")
	}
	drain(t, e, s)

	if len(sink.records) != 6 {
		t.Fatalf("got %d records, want 6", len(sink.records))
	}
	_, payloads := openAll(t, km, sink.records)
	if !bytes.Equal(bytes.Join(payloads, nil), want) {
		t.Fatal("records reached the sink out of sequence order")
	}
	st := e.Stats()
	if st.OffloadOps != 6 || st.SoftwareOps != 0 {
		t.Fatalf("stats = %+v, want 6 offload / 0 software", st)
	}
}

// TestStreamBurstBatchSubmit checks that one Write fragments into
// multiple records and submits them with a single doorbell.
func TestStreamBurstBatchSubmit(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	km := testKM()
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordOffload}})
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'b'}, 4*minitls.MaxPlaintext)
	if err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	drain(t, e, s)
	stats := inst.Stats()
	if stats.Doorbells != 1 {
		t.Fatalf("burst rang %d doorbells, want 1", stats.Doorbells)
	}
	if stats.BatchSubmitted != 4 {
		t.Fatalf("batch submitted %d requests, want 4", stats.BatchSubmitted)
	}
	_, payloads := openAll(t, km, sink.records)
	if !bytes.Equal(bytes.Join(payloads, nil), payload) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestStreamAdaptiveThreshold(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	km := testKM()
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordAdaptive}})
	if e.Policy().SizeThreshold != offload.DefaultRecordThreshold {
		t.Fatalf("engine did not resolve the adaptive threshold default")
	}
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRecord(minitls.RecordTypeApplicationData, bytes.Repeat([]byte{'s'}, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRecord(minitls.RecordTypeApplicationData, bytes.Repeat([]byte{'L'}, 8192)); err != nil {
		t.Fatal(err)
	}
	drain(t, e, s)
	st := e.Stats()
	if st.SoftwareOps != 1 || st.OffloadOps != 1 {
		t.Fatalf("stats = %+v, want 1 software (1 KB) / 1 offload (8 KB)", st)
	}
	if _, payloads := openAll(t, km, sink.records); len(payloads) != 2 {
		t.Fatalf("got %d records, want 2", len(payloads))
	}
}

// TestStreamFallbackOnDeviceReset resets the endpoint mid-batch: the
// accepted prefix fails in flight and must be re-sealed in software at
// flush time under the original sequence numbers, keeping the stream
// decryptable with no gap.
func TestStreamFallbackOnDeviceReset(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp,
		P: 1, After: 2, Limit: 1,
	})
	dev := qat.NewDevice(qat.DeviceSpec{
		Endpoints:   1,
		SymBaseTime: 2 * time.Millisecond, // keep the prefix in flight at reset
		Injector:    inj,
	})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	km := testKM()
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordOffload}})
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	// One burst of three records: two accepted before the injected
	// reset, the third sealed in software immediately.
	payload := bytes.Repeat([]byte{'r'}, 3*minitls.MaxPlaintext)
	if err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	drain(t, e, s)

	if len(sink.records) != 3 {
		t.Fatalf("got %d records, want 3", len(sink.records))
	}
	_, payloads := openAll(t, km, sink.records)
	if !bytes.Equal(bytes.Join(payloads, nil), payload) {
		t.Fatal("fallback re-seal broke sequence continuity")
	}
	st := e.Stats()
	if st.Fallbacks < 3 { // 2 failed in flight + 1 rejected at submit
		t.Fatalf("stats.Fallbacks = %d, want >= 3 (%+v)", st.Fallbacks, st)
	}
	if st.Records != 3 {
		t.Fatalf("stats.Records = %d, want 3", st.Records)
	}
}

// TestStreamRingFullFallback rejects the first submission with a
// ring-full storm; the record must seal in software with no sink gap.
func TestStreamRingFullFallback(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.RingFull, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp,
		P: 1, Limit: 1,
	})
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1, Injector: inj})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	km := testKM()
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordOffload}})
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{'f'}, 8192)
	if err := s.WriteRecord(minitls.RecordTypeApplicationData, rec); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRecord(minitls.RecordTypeApplicationData, rec); err != nil {
		t.Fatal(err)
	}
	drain(t, e, s)
	st := e.Stats()
	if st.RingFull != 1 || st.SoftwareOps != 1 || st.OffloadOps != 1 {
		t.Fatalf("stats = %+v, want 1 ring-full software fallback + 1 offload", st)
	}
	_, payloads := openAll(t, km, sink.records)
	if !bytes.Equal(bytes.Join(payloads, nil), append(append([]byte(nil), rec...), rec...)) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestStreamCloseNotify(t *testing.T) {
	km := testKM()
	e := New(Config{})
	sink := &captureSink{}
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write([]byte("goodbye")); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseNotify(); err != nil {
		t.Fatal(err)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after CloseNotify")
	}
	if err := s.Write([]byte("x")); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Write after close = %v, want ErrStreamClosed", err)
	}
	if err := s.CloseNotify(); err != nil {
		t.Fatalf("second CloseNotify: %v", err)
	}
	types, payloads := openAll(t, km, sink.records)
	if len(types) != 2 {
		t.Fatalf("got %d records, want 2", len(types))
	}
	if types[1] != minitls.RecordTypeAlert || !bytes.Equal(payloads[1], minitls.AlertCloseNotify()) {
		t.Fatalf("final record is %d/%v, want close-notify alert", types[1], payloads[1])
	}
	if st := e.Stats(); st.SoftwareOps != 2 {
		t.Fatalf("close-notify must seal in software; stats = %+v", st)
	}
}

// TestStreamCancelDropsInflight cancels a stream with offloads in
// flight: completions must be discarded without sink writes and without
// corrupting inflight accounting.
func TestStreamCancelDropsInflight(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1, SymBaseTime: time.Millisecond})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordOffload}})
	sink := &captureSink{}
	s, err := e.NewStream(testKM(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(bytes.Repeat([]byte{'c'}, 2*minitls.MaxPlaintext)); err != nil {
		t.Fatal(err)
	}
	if e.Inflight() != 2 {
		t.Fatalf("inflight = %d, want 2", e.Inflight())
	}
	s.Cancel()
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after cancel, want 0", s.Pending())
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Inflight() > 0 && time.Now().Before(deadline) {
		e.Poll()
		time.Sleep(50 * time.Microsecond)
	}
	if e.Inflight() != 0 {
		t.Fatal("inflight never drained after cancel")
	}
	if len(sink.records) != 0 {
		t.Fatalf("canceled stream delivered %d records", len(sink.records))
	}
	if err := s.Write([]byte("x")); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Write after cancel = %v, want ErrStreamClosed", err)
	}
}

// TestStreamSinkErrorSticky: a failing sink poisons the stream and the
// error surfaces on subsequent writes.
func TestStreamSinkErrorSticky(t *testing.T) {
	e := New(Config{})
	boom := errors.New("socket gone")
	sink := &captureSink{err: boom}
	s, err := e.NewStream(testKM(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Write = %v, want sink error", err)
	}
	if err := s.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want sink error", err)
	}
	if err := s.Write([]byte("y")); !errors.Is(err, boom) {
		t.Fatalf("second Write = %v, want sticky sink error", err)
	}
}

// TestBreakerShedsToSoftware trips the breaker with repeated resets and
// checks further records seal in software while it is open.
func TestBreakerShedsToSoftware(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{
		Kind: fault.Reset, Endpoint: fault.AnyEndpoint, Op: fault.AnyOp, P: 1,
	})
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1, Injector: inj})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Instance: inst,
		Policy:   offload.RecordPolicy{Mode: offload.RecordOffload},
		Breaker:  &fault.BreakerConfig{Window: 4, MinSamples: 2, Cooldown: time.Hour},
	})
	sink := &captureSink{}
	km := testKM()
	s, err := e.NewStream(km, sink)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{'z'}, 8192)
	for i := 0; i < 8; i++ {
		if err := s.WriteRecord(minitls.RecordTypeApplicationData, rec); err != nil {
			t.Fatal(err)
		}
		drain(t, e, s)
	}
	st := e.Stats()
	if st.SoftwareOps == 0 {
		t.Fatalf("breaker never shed to software: %+v", st)
	}
	if len(sink.records) != 8 {
		t.Fatalf("got %d records, want 8", len(sink.records))
	}
	if _, payloads := openAll(t, km, sink.records); len(payloads) != 8 {
		t.Fatal("roundtrip failed under breaker shedding")
	}
}

// TestOpenAsyncRoundtrip drives the decrypt-side seam: records sealed
// by one codec are opened through the engine, offloaded when the policy
// admits them and inline otherwise.
func TestOpenAsyncRoundtrip(t *testing.T) {
	dev := qat.NewDevice(qat.DeviceSpec{Endpoints: 1})
	defer dev.Close()
	inst, err := dev.AllocInstance()
	if err != nil {
		t.Fatal(err)
	}
	km := testKM()
	seal, err := minitls.NewRecordCodec(km)
	if err != nil {
		t.Fatal(err)
	}
	open, err := minitls.NewRecordCodec(km)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Instance: inst, Policy: offload.RecordPolicy{Mode: offload.RecordAdaptive}})

	mkRecord := func(seq uint64, payload []byte) []byte {
		wireTyp, body, err := seal.Seal(seq, minitls.RecordTypeApplicationData, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec := minitls.AppendRecordHeader(nil, wireTyp, len(body))
		return append(rec, body...)
	}

	// Small record: opened inline in software (below threshold).
	smallDone := false
	small := bytes.Repeat([]byte{'s'}, 512)
	e.OpenAsync(open, km.Seq, mkRecord(km.Seq, small), func(typ uint8, payload []byte, err error) {
		if err != nil || typ != minitls.RecordTypeApplicationData || !bytes.Equal(payload, small) {
			t.Errorf("small open: typ=%d err=%v", typ, err)
		}
		smallDone = true
	})
	if !smallDone {
		t.Fatal("sub-threshold open did not complete inline")
	}

	// Large record: offloaded, completes via Poll.
	largeDone := false
	large := bytes.Repeat([]byte{'L'}, minitls.MaxPlaintext)
	e.OpenAsync(open, km.Seq+1, mkRecord(km.Seq+1, large), func(typ uint8, payload []byte, err error) {
		if err != nil || !bytes.Equal(payload, large) {
			t.Errorf("large open: typ=%d err=%v", typ, err)
		}
		largeDone = true
	})
	if largeDone {
		t.Fatal("above-threshold open completed inline; want offload")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !largeDone && time.Now().Before(deadline) {
		e.Poll()
		time.Sleep(50 * time.Microsecond)
	}
	if !largeDone {
		t.Fatal("offloaded open never completed")
	}

	// Tampered record: the codec verdict must surface, not be retried away.
	bad := mkRecord(km.Seq+2, small)
	bad[len(bad)-1] ^= 0x80
	gotErr := false
	e.OpenAsync(open, km.Seq+2, bad, func(typ uint8, payload []byte, err error) {
		gotErr = err != nil
	})
	if !gotErr {
		t.Fatal("tampered record opened successfully")
	}
	st := e.Stats()
	if st.OffloadOps != 1 || st.SoftwareOps != 2 {
		t.Fatalf("stats = %+v, want 1 offload / 2 software opens", st)
	}
}

// BenchmarkStreamSeal measures the software seal path per 16 KB record
// (pool reuse keeps it allocation-light); the bench-smoke CI job runs it
// once as a liveness check.
func BenchmarkStreamSeal(b *testing.B) {
	e := New(Config{})
	s, err := e.NewStream(testKM(), discardSink{})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'b'}, minitls.MaxPlaintext)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

type discardSink struct{}

func (discardSink) WriteRecord([]byte) error { return nil }
