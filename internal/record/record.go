// Package record is the post-handshake record-path data plane: a
// kTLS-style symmetric-crypto offload engine that takes over a TLS
// connection's write direction once the handshake (and its asymmetric
// offload story, the paper's subject) has finished.
//
// The hand-off mirrors kernel TLS: the handshake stays in
// internal/minitls; the negotiated keys are exported
// (minitls.Conn.ExportWriteKeys), the conn's writer is detached, and a
// Stream owns the direction from then on — sequence numbers continue
// exactly where the handshake left them, so a plain software peer keeps
// reading the stream and the close-notify alert arrives through the
// same sealed channel.
//
// Records are sealed either on the worker core (software) or on a QAT
// symmetric instance (qat.OpSym, byte-calibrated service times), chosen
// per record by the shared offload.RecordPolicy. Offloaded seals
// complete out of order across records of one burst; the Stream's FIFO
// holds completed wire records until every earlier record is done, so
// the sink always observes them in sequence order. Sealed output lands
// in pooled wire buffers; plaintext is never copied — the Work closure
// reads the caller's payload in place (the sendfile-style zero-copy
// contract: callers keep payloads stable until the stream drains).
//
// Degradation reuses the familiar ladder: ring-full and breaker-open
// submissions fall back to software immediately; an offload that fails
// in flight (endpoint reset) is re-sealed in software at flush time
// under its original sequence number, so faults cost latency, never
// correctness.
//
// Like the handshake engine, a record Engine is owned by one event-loop
// goroutine: Submit happens on it and completions are drained by Poll
// on it. The only cross-goroutine work is the seal itself, on the
// device's engine goroutines.
package record

import (
	"crypto/rand"
	"errors"
	"io"
	"sync"
	"time"

	"qtls/internal/fault"
	"qtls/internal/flight"
	"qtls/internal/metrics"
	"qtls/internal/minitls"
	"qtls/internal/offload"
	"qtls/internal/qat"
	"qtls/internal/trace"
)

// MaxRecordWire bounds one wire record (header + protected body); the
// buffer pool's buffers hold this much.
const MaxRecordWire = minitls.RecordHeaderLen + minitls.MaxCiphertext

// ErrStreamClosed is returned by writes after CloseNotify or Cancel.
var ErrStreamClosed = errors.New("record: stream closed")

// Sink receives completed wire records, in sequence order. The slice is
// only valid during the call: it returns to the engine's buffer pool.
// Implementations append to a socket buffer (the server's netpoll conn).
type Sink interface {
	WriteRecord(rec []byte) error
}

// Config configures a record Engine.
type Config struct {
	// Instance is the QAT crypto instance symmetric ops are submitted
	// to. nil builds a software-only engine (RecordSoftware behavior
	// regardless of Policy).
	Instance *qat.Instance
	// Policy is the per-record offload decision (software / offload /
	// offload-above-size-threshold).
	Policy offload.RecordPolicy
	// Breaker, when set, tracks the instance's record-op health:
	// while open, records are sealed in software instead of submitted.
	Breaker *fault.BreakerConfig
	// Rand supplies record IVs (default crypto/rand; it must be safe
	// for concurrent use — offloaded seals run on engine goroutines).
	Rand io.Reader
	// Metrics, when set, feeds qtls_record_bytes and the per-path op
	// counters.
	Metrics *metrics.Registry
	// Trace, when set, records PhaseRecord flush spans.
	Trace *trace.Buffer
	// Flight, when set, receives black-box events: record-path breaker
	// transitions and every offload-to-software fallback with its cause
	// (ring-full, breaker-open, in-flight failure).
	Flight *flight.Journal
}

// Stats are the engine's cumulative counters. Read them on the owner
// goroutine (or through the metrics registry from anywhere).
type Stats struct {
	// Records counts wire records delivered to sinks.
	Records int64
	// OffloadOps counts records sealed on the accelerator.
	OffloadOps int64
	// SoftwareOps counts records sealed on the worker core: policy
	// decisions, sub-threshold records, alerts, and fallback re-seals
	// (which also count as Fallbacks).
	SoftwareOps int64
	// Fallbacks counts offloads that degraded to software: ring-full,
	// breaker-open, or a failed in-flight op re-sealed at flush time.
	Fallbacks int64
	// RingFull counts submissions rejected by a full request ring (a
	// subset of Fallbacks).
	RingFull int64
	// Bytes counts plaintext payload bytes sealed.
	Bytes int64
}

// Engine drives the offloaded record data plane over one QAT instance.
// One event-loop goroutine owns it: NewStream, Stream writes and Poll
// must all run there.
type Engine struct {
	inst *qat.Instance
	pol  offload.RecordPolicy
	brk  *fault.Breaker
	rnd  io.Reader
	tr   *trace.Buffer
	fl   *flight.Journal

	pool sync.Pool // *buffer; Work closures fill them on engine goroutines

	inflight int
	ready    []*Stream // streams with newly completed jobs since last flush
	stats    Stats

	ctrBytes    *metrics.Counter // qtls_record_bytes
	ctrOffload  *metrics.Counter // qtls_record_offload_ops
	ctrSoftware *metrics.Counter // qtls_record_sw_ops
}

type buffer struct{ b []byte }

// New builds a record engine.
func New(cfg Config) *Engine {
	e := &Engine{
		inst: cfg.Instance,
		pol:  cfg.Policy.WithDefaults(),
		rnd:  cfg.Rand,
		tr:   cfg.Trace,
	}
	if e.rnd == nil {
		e.rnd = rand.Reader
	}
	e.fl = cfg.Flight
	if cfg.Breaker != nil {
		e.brk = fault.NewBreaker(*cfg.Breaker)
		if e.fl != nil {
			// Journal record-path breaker transitions; Arg -1 marks the
			// record breaker (handshake-engine breakers carry an instance
			// index there).
			e.brk.SetOnTransition(func(from, to fault.BreakerState) {
				e.fl.Note(flight.KindBreaker, uint8(to), trace.Op(qat.OpSym), int64(from), -1)
			})
		}
	}
	if cfg.Metrics != nil {
		e.ctrBytes = cfg.Metrics.Counter("qtls_record_bytes")
		e.ctrOffload = cfg.Metrics.Counter("qtls_record_offload_ops")
		e.ctrSoftware = cfg.Metrics.Counter("qtls_record_sw_ops")
	}
	e.pool.New = func() any { return &buffer{b: make([]byte, 0, MaxRecordWire)} }
	return e
}

// Inflight returns the number of offloaded seals awaiting completion.
func (e *Engine) Inflight() int { return e.inflight }

// Stats returns the engine's counters (owner goroutine only).
func (e *Engine) Stats() Stats { return e.stats }

// Policy returns the engine's resolved record policy.
func (e *Engine) Policy() offload.RecordPolicy { return e.pol }

// job is one record moving through a stream: sealed into buf either
// inline (software) or by an engine goroutine (offload).
type job struct {
	s       *Stream
	seq     uint64
	typ     uint8
	payload []byte
	buf     *buffer // complete wire record once done
	done    bool
	failed  bool // offload failed in flight; re-seal in software at flush
}

// Stream is the offloaded write path of one connection, created from
// keys exported by a completed handshake. Writes enqueue sealed records;
// the sink receives them in order as seals complete (immediately for
// software seals, after Poll for offloaded ones).
type Stream struct {
	e     *Engine
	codec minitls.RecordCodec
	sink  Sink
	seq   uint64
	q     []*job // submission order; head flushes when done
	err   error  // sticky seal/sink error
	// closed: CloseNotify queued; canceled: owner gave up, completions
	// are dropped without sink writes.
	closed   bool
	canceled bool
	queued   bool // in e.ready
}

// NewStream builds a stream from exported key material. The sequence
// numbers continue from km.Seq — the continuity that keeps the peer's
// software record layer in sync across the hand-off.
func (e *Engine) NewStream(km minitls.KeyMaterial, sink Sink) (*Stream, error) {
	codec, err := minitls.NewRecordCodec(km)
	if err != nil {
		return nil, err
	}
	return &Stream{e: e, codec: codec, sink: sink, seq: km.Seq}, nil
}

// Pending returns the number of records not yet delivered to the sink.
func (s *Stream) Pending() int { return len(s.q) }

// Err returns the stream's sticky error (a failed software seal or sink
// write), if any.
func (s *Stream) Err() error { return s.err }

// Closed reports whether CloseNotify has been queued.
func (s *Stream) Closed() bool { return s.closed }

// Write seals p as application-data records, fragmenting at
// minitls.MaxPlaintext. The caller must keep p stable until Pending
// returns 0 — record protection reads it in place (zero-copy). Offload
// eligibility is decided per fragment; a multi-fragment burst submits
// with one doorbell (qat.SubmitBatch).
func (s *Stream) Write(p []byte) error {
	if s.closed || s.canceled {
		return ErrStreamClosed
	}
	if s.err != nil {
		return s.err
	}
	// Fragment and classify.
	var jobs []*job
	var reqs []qat.Request
	var offloadable []*job
	for off := 0; off < len(p); off += minitls.MaxPlaintext {
		end := off + minitls.MaxPlaintext
		if end > len(p) {
			end = len(p)
		}
		j := &job{s: s, seq: s.seq, typ: minitls.RecordTypeApplicationData, payload: p[off:end]}
		s.seq++
		jobs = append(jobs, j)
		if s.e.shouldOffload(len(j.payload)) {
			reqs = append(reqs, s.e.requestFor(j))
			offloadable = append(offloadable, j)
		}
	}
	// One doorbell for the burst; the unaccepted tail (ring full) and
	// the never-offloadable fragments seal in software below.
	accepted := 0
	if len(reqs) > 0 {
		n, err := s.e.inst.SubmitBatch(reqs)
		accepted = n
		if err != nil && errors.Is(err, qat.ErrRingFull) {
			s.e.stats.RingFull++
		}
		s.e.inflight += accepted
		s.e.stats.OffloadOps += int64(accepted)
		if s.e.ctrOffload != nil {
			s.e.ctrOffload.Add(int64(accepted))
		}
		if tail := len(offloadable) - accepted; tail > 0 {
			s.e.stats.Fallbacks += int64(tail)
			s.e.fl.Note(flight.KindFallback, flight.FallbackRingFull, trace.Op(qat.OpSym), 0, int64(tail))
		}
	}
	for _, j := range offloadable[accepted:] {
		s.e.sealSoftware(j)
	}
	for _, j := range jobs {
		if !j.done && !jobOffloaded(j, offloadable[:accepted]) {
			s.e.sealSoftware(j)
		}
		s.q = append(s.q, j)
	}
	return s.flush()
}

// jobOffloaded reports whether j is among the accepted offloads. Bursts
// are at most a few records (64 KB response = 4), so linear scan is fine.
func jobOffloaded(j *job, accepted []*job) bool {
	for _, a := range accepted {
		if a == j {
			return true
		}
	}
	return false
}

// WriteRecord seals one record of the given type (single-record writes
// and tests; payload must fit one fragment).
func (s *Stream) WriteRecord(typ uint8, payload []byte) error {
	if s.closed || s.canceled {
		return ErrStreamClosed
	}
	if s.err != nil {
		return s.err
	}
	if len(payload) > minitls.MaxPlaintext {
		return errors.New("record: WriteRecord payload exceeds one fragment")
	}
	j := &job{s: s, seq: s.seq, typ: typ, payload: payload}
	s.seq++
	if s.e.shouldOffload(len(payload)) && typ == minitls.RecordTypeApplicationData {
		if err := s.e.inst.Submit(s.e.requestFor(j)); err == nil {
			s.e.inflight++
			s.e.stats.OffloadOps++
			if s.e.ctrOffload != nil {
				s.e.ctrOffload.Inc()
			}
			s.q = append(s.q, j)
			return s.flush()
		} else if errors.Is(err, qat.ErrRingFull) {
			s.e.stats.RingFull++
			s.e.stats.Fallbacks++
			s.e.fl.Note(flight.KindFallback, flight.FallbackRingFull, trace.Op(qat.OpSym), 0, 1)
		}
	}
	s.e.sealSoftware(j)
	s.q = append(s.q, j)
	return s.flush()
}

// CloseNotify queues the close-notify alert through the stream — the
// sealed goodbye a detached minitls.Conn can no longer send itself. The
// alert is tiny and ordering-critical, so it always seals in software.
func (s *Stream) CloseNotify() error {
	if s.closed || s.canceled {
		return nil
	}
	j := &job{s: s, seq: s.seq, typ: minitls.RecordTypeAlert, payload: minitls.AlertCloseNotify()}
	s.seq++
	s.e.sealSoftware(j)
	s.q = append(s.q, j)
	s.closed = true
	return s.flush()
}

// Cancel abandons the stream: queued records are released and in-flight
// completions will be dropped without sink writes. For teardown paths
// (closeConn); inflight accounting stays consistent.
func (s *Stream) Cancel() {
	if s.canceled {
		return
	}
	s.canceled = true
	for _, j := range s.q {
		if j.done && j.buf != nil {
			s.e.putBuf(j.buf)
			j.buf = nil
		}
	}
	s.q = nil
}

// shouldOffload is the per-record submission decision: an instance is
// wired, the policy says offload at this size, and the breaker admits.
func (e *Engine) shouldOffload(bytes int) bool {
	if e.inst == nil || !e.pol.Offload(bytes) {
		return false
	}
	if e.brk != nil && !e.brk.Allow(time.Now()) {
		// Routed to software while the record breaker is non-closed; the
		// black box sees the routing decision, not just the trip.
		e.fl.Note(flight.KindFallback, flight.FallbackBreaker, trace.Op(qat.OpSym), 0, 0)
		return false
	}
	return true
}

// requestFor builds the OpSym request sealing j into a pooled wire
// buffer on an engine goroutine. The callback (run inside Poll, on the
// owner goroutine) lands the result on the job.
func (e *Engine) requestFor(j *job) qat.Request {
	return qat.Request{
		Op:    qat.OpSym,
		Bytes: len(j.payload),
		Work: func() (any, error) {
			buf := e.getBuf()
			var err error
			buf.b, err = e.sealInto(buf.b, j.seq, j.typ, j.s.codec, j.payload)
			if err != nil {
				e.putBuf(buf)
				return nil, err
			}
			return buf, nil
		},
		Callback: func(r qat.Response) {
			e.inflight--
			if e.brk != nil {
				if r.Err != nil {
					e.brk.RecordFailure(time.Now())
				} else {
					e.brk.RecordSuccess(time.Now())
				}
			}
			buf, ok := r.Result.(*buffer)
			if r.Err != nil || !ok {
				// Failed in flight (endpoint reset, drop-timeout path):
				// re-seal in software at flush time, same sequence number.
				j.failed = true
				e.stats.Fallbacks++
				e.fl.Note(flight.KindFallback, flight.FallbackError, trace.Op(qat.OpSym), 0, int64(j.seq))
			} else {
				j.buf = buf
			}
			j.done = true
			if j.s.canceled {
				if j.buf != nil {
					e.putBuf(j.buf)
					j.buf = nil
				}
				return
			}
			if !j.s.queued {
				j.s.queued = true
				e.ready = append(e.ready, j.s)
			}
		},
	}
}

// OpenAsync submits the open (decrypt + verify) of one wire record —
// header included — to the accelerator, invoking cb from a later Poll
// with the inner type and payload. When no instance is wired, the
// policy declines the body size, or the ring is full, the open runs
// inline in software and cb is invoked before OpenAsync returns. An
// offloaded open that fails in flight is retried in software at
// completion, so cb always reports the codec's verdict, never the
// device's. rec must stay stable until cb runs; the payload passed to
// cb may alias rec.
//
// This is the receive-side counterpart of Stream: the live server keeps
// its receive path in software (client→server records are far below any
// sensible threshold), so decrypt offload is exercised through this
// seam rather than a conn mode switch.
func (e *Engine) OpenAsync(codec minitls.RecordCodec, seq uint64, rec []byte, cb func(typ uint8, payload []byte, err error)) {
	open := func() (uint8, []byte, error) {
		if len(rec) < minitls.RecordHeaderLen {
			return 0, nil, errors.New("record: short wire record")
		}
		return codec.Open(seq, rec[0], rec[minitls.RecordHeaderLen:])
	}
	if e.shouldOffload(len(rec) - minitls.RecordHeaderLen) {
		type opened struct {
			typ     uint8
			payload []byte
		}
		err := e.inst.Submit(qat.Request{
			Op:    qat.OpSym,
			Bytes: len(rec) - minitls.RecordHeaderLen,
			Work: func() (any, error) {
				typ, payload, err := open()
				if err != nil {
					return nil, err
				}
				return opened{typ, payload}, nil
			},
			Callback: func(r qat.Response) {
				e.inflight--
				if e.brk != nil {
					if r.Err != nil {
						e.brk.RecordFailure(time.Now())
					} else {
						e.brk.RecordSuccess(time.Now())
					}
				}
				if res, ok := r.Result.(opened); ok && r.Err == nil {
					cb(res.typ, res.payload, nil)
					return
				}
				// Device fault, not a codec verdict: re-open in software.
				e.stats.Fallbacks++
				e.fl.Note(flight.KindFallback, flight.FallbackError, trace.Op(qat.OpSym), 0, int64(seq))
				typ, payload, err := open()
				cb(typ, payload, err)
			},
		})
		if err == nil {
			e.inflight++
			e.stats.OffloadOps++
			if e.ctrOffload != nil {
				e.ctrOffload.Inc()
			}
			return
		}
		cause := uint8(flight.FallbackError)
		if errors.Is(err, qat.ErrRingFull) {
			e.stats.RingFull++
			cause = flight.FallbackRingFull
		}
		e.stats.Fallbacks++
		e.fl.Note(flight.KindFallback, cause, trace.Op(qat.OpSym), 0, int64(seq))
	}
	e.stats.SoftwareOps++
	if e.ctrSoftware != nil {
		e.ctrSoftware.Inc()
	}
	typ, payload, err := open()
	cb(typ, payload, err)
}

// sealInto protects one record into dst (header + body) and returns it.
func (e *Engine) sealInto(dst []byte, seq uint64, typ uint8, codec minitls.RecordCodec, payload []byte) ([]byte, error) {
	wireTyp, body, err := codec.Seal(seq, typ, payload, e.rnd)
	if err != nil {
		return dst, err
	}
	dst = minitls.AppendRecordHeader(dst[:0], wireTyp, len(body))
	return append(dst, body...), nil
}

// sealSoftware seals j inline on the owner goroutine.
func (e *Engine) sealSoftware(j *job) {
	buf := e.getBuf()
	var err error
	buf.b, err = e.sealInto(buf.b, j.seq, j.typ, j.s.codec, j.payload)
	if err != nil {
		e.putBuf(buf)
		if j.s.err == nil {
			j.s.err = err
		}
	} else {
		j.buf = buf
	}
	j.done = true
	j.failed = false
	e.stats.SoftwareOps++
	if e.ctrSoftware != nil {
		e.ctrSoftware.Inc()
	}
}

// Poll drains device completions and flushes every stream that gained
// one, in order. Returns the number of completions retrieved. Call it
// from the owner goroutine whenever Inflight() > 0.
func (e *Engine) Poll() int {
	if e.inst == nil {
		return 0
	}
	n := e.inst.Poll(0)
	if len(e.ready) > 0 {
		streams := e.ready
		e.ready = e.ready[:0]
		for _, s := range streams {
			s.queued = false
			if !s.canceled {
				s.flush() // sticky error surfaces via Stream.Err
			}
		}
	}
	return n
}

// flush delivers the done prefix of the stream's queue to the sink, in
// sequence order, releasing buffers as they land. Failed offloads are
// re-sealed in software here — on the owner goroutine, under their
// original sequence numbers — so a device fault never reorders or drops
// a record.
func (s *Stream) flush() error {
	if len(s.q) == 0 {
		return s.err
	}
	var start time.Time
	tracing := s.e.tr.Active()
	if tracing {
		start = time.Now()
	}
	var wire int64
	for len(s.q) > 0 {
		j := s.q[0]
		if !j.done {
			break
		}
		if j.failed {
			s.e.sealSoftware(j)
		}
		s.q = s.q[1:]
		if j.buf == nil {
			continue // seal failed; s.err is set
		}
		if s.err == nil {
			if err := s.sink.WriteRecord(j.buf.b); err != nil {
				s.err = err
			} else {
				wire += int64(len(j.buf.b))
				s.e.stats.Records++
				s.e.stats.Bytes += int64(len(j.payload))
				if s.e.ctrBytes != nil {
					s.e.ctrBytes.Add(int64(len(j.payload)))
				}
			}
		}
		s.e.putBuf(j.buf)
		j.buf = nil
	}
	if tracing && wire > 0 {
		s.e.tr.Record(trace.PhaseRecord, trace.Op(qat.OpSym), trace.TagNone, wire, start, time.Since(start))
	}
	return s.err
}

func (e *Engine) getBuf() *buffer {
	return e.pool.Get().(*buffer)
}

func (e *Engine) putBuf(b *buffer) {
	b.b = b.b[:0]
	e.pool.Put(b)
}
