package metrics

import (
	"errors"
	"fmt"
	"io"
	"regexp"
	"strings"
	"testing"
)

func TestMetricsPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("qat_sw_fallbacks").Add(7)
	r.Counter(`qtls_polls{cause="heuristic"}`).Add(3)
	r.Counter(`qtls_polls{cause="timer"}`).Add(2)
	r.Gauge(`qtls_inflight{worker="0"}`).Set(5)
	h := r.Histogram(`qtls_phase_ns{phase="pre"}`)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i * 1000))
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE qat_sw_fallbacks counter\n",
		"qat_sw_fallbacks 7\n",
		"# TYPE qtls_polls counter\n",
		`qtls_polls{cause="heuristic"} 3` + "\n",
		`qtls_polls{cause="timer"} 2` + "\n",
		"# TYPE qtls_inflight gauge\n",
		`qtls_inflight{worker="0"} 5` + "\n",
		"# TYPE qtls_phase_ns summary\n",
		`qtls_phase_ns{phase="pre",quantile="0.5"}`,
		`qtls_phase_ns{phase="pre",quantile="0.9"}`,
		`qtls_phase_ns{phase="pre",quantile="0.99"}`,
		`qtls_phase_ns_sum{phase="pre"} 5.05e+06` + "\n",
		`qtls_phase_ns_count{phase="pre"} 100` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// One TYPE line per family, emitted before that family's samples.
	if strings.Count(out, "# TYPE qtls_polls ") != 1 {
		t.Fatalf("duplicate TYPE line for labeled family:\n%s", out)
	}

	// Every line must be a comment or `name{labels} value`.
	line := regexp.MustCompile(`^(# .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+)$`)
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
	}
}

func TestMetricsPrometheusSanitizesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("bad-name.with spaces").Inc()
	r.Counter("0starts_with_digit").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"bad_name_with_spaces 1\n", "_starts_with_digit 1\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsPrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_ns")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "empty_ns_count 0\n") {
		t.Fatalf("empty histogram not exported:\n%s", out)
	}
}

func TestMetricsPrometheusHelpLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("qtls_record_bytes").Add(10)
	r.SetHelp("qtls_record_bytes", "Wire bytes flushed by the record data plane.")
	r.SetHelp("with\nnewline", `line one
line two \ backslash`)
	r.Counter("with\nnewline").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "# HELP qtls_record_bytes Wire bytes flushed by the record data plane.\n# TYPE qtls_record_bytes counter\n"
	if !strings.Contains(out, want) {
		t.Fatalf("HELP not emitted before TYPE:\n%s", out)
	}
	if !strings.Contains(out, `# HELP with_newline line one\nline two \\ backslash`) {
		t.Fatalf("HELP escaping wrong:\n%s", out)
	}
}

func TestMetricsPrometheusAddExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_counter").Inc()
	r.AddExposition(func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "# TYPE custom_series gauge\ncustom_series 42\n")
		return err
	})
	r.AddExposition(nil) // ignored
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "custom_series 42\n") {
		t.Fatalf("exposition hook output missing:\n%s", out)
	}
	if strings.Index(out, "custom_series") < strings.Index(out, "a_counter") {
		t.Fatalf("exposition hooks must run after built-in series:\n%s", out)
	}
	wantErr := errors.New("boom")
	r.AddExposition(func(io.Writer) error { return wantErr })
	if err := r.WritePrometheus(&sb); err != wantErr {
		t.Fatalf("exposition error not propagated: %v", err)
	}
}
