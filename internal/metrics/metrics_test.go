package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestCounterAddNegativePanics(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-5)
	if g.Value() != 5 {
		t.Fatalf("Value = %d, want 5", g.Value())
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 5.5 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("P50 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("Q1 = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("Snapshot.Count = %d", s.Count)
	}
}

func TestHistogramReservoirKeepsBounds(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 99999 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// Median estimate should land roughly mid-range despite sampling.
	med := h.Quantile(0.5)
	if med < 20000 || med > 80000 {
		t.Fatalf("median estimate %v implausible", med)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(3)
	if h.Quantile(-1) != 3 || h.Quantile(2) != 3 {
		t.Fatal("quantile should clamp q to [0,1]")
	}
}

// Property: mean always lies between min and max, and quantiles are
// monotonic in q.
func TestHistogramInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			// Durations in practice; avoid float summation overflow for
			// astronomically large generated values.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		h := NewHistogram(1024)
		for _, v := range clean {
			h.Observe(v)
		}
		const eps = 1e-6
		mean, lo, hi := h.Mean(), h.Min(), h.Max()
		span := math.Max(1, math.Abs(lo)+math.Abs(hi))
		if mean < lo-eps*span || mean > hi+eps*span {
			return false
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	m.Mark(5)
	if m.Total() != 15 {
		t.Fatalf("Total = %d", m.Total())
	}
	time.Sleep(time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatal("Rate should be positive after events")
	}
}

// The fault/degradation counters surfaced in stub_status register
// themselves in a Registry on first use; the same name yields the same
// counter and snapshots reflect increments.
func TestRegistryFaultCounterRegistration(t *testing.T) {
	r := NewRegistry()
	names := []string{
		"qat_faults_injected",
		"qat_op_timeouts",
		"qat_sw_fallbacks",
		"qat_instance_trips",
	}
	for _, name := range names {
		r.Counter(name)
	}
	for _, name := range names {
		if _, ok := r.Lookup(name); !ok {
			t.Fatalf("%s not registered", name)
		}
	}
	got := r.Names()
	if len(got) != len(names) {
		t.Fatalf("Names = %v", got)
	}
	// Get-or-create returns the same counter.
	r.Counter("qat_sw_fallbacks").Add(3)
	r.Counter("qat_sw_fallbacks").Inc()
	snap := r.Snapshot()
	if snap["qat_sw_fallbacks"] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["qat_op_timeouts"] != 0 {
		t.Fatalf("untouched counter = %d", snap["qat_op_timeouts"])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared").Value(); v != 8000 {
		t.Fatalf("shared = %d", v)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram(8)
	h.ObserveDuration(time.Millisecond)
	s := h.Snapshot().String()
	if s == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestMetricsMeterIntervalRate(t *testing.T) {
	m := NewMeter()
	m.Mark(100)
	time.Sleep(20 * time.Millisecond)
	r1 := m.IntervalRate()
	if r1 <= 0 {
		t.Fatalf("first interval rate = %v, want > 0", r1)
	}
	// No new events: the next interval rate must be ~0, unlike Rate,
	// which still reports the lifetime average.
	time.Sleep(20 * time.Millisecond)
	if r2 := m.IntervalRate(); r2 != 0 {
		t.Fatalf("idle interval rate = %v, want 0", r2)
	}
	if m.Rate() <= 0 {
		t.Fatal("lifetime Rate lost events")
	}
	m.Mark(50)
	time.Sleep(20 * time.Millisecond)
	if r3 := m.IntervalRate(); r3 <= 0 {
		t.Fatalf("third interval rate = %v, want > 0", r3)
	}
	if m.Total() != 150 {
		t.Fatalf("Total = %d", m.Total())
	}
}

// Get-or-create must return one stable instance per (kind, name) under
// concurrent first use across all three kinds.
func TestMetricsRegistryKindsConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("kinds_shared").Inc()
				r.Gauge("kinds_shared").Add(1)
				r.Histogram("kinds_shared").Observe(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("kinds_shared").Value(); v != 4000 {
		t.Fatalf("counter = %d", v)
	}
	if v := r.Gauge("kinds_shared").Value(); v != 4000 {
		t.Fatalf("gauge = %d", v)
	}
	if n := r.Histogram("kinds_shared").Count(); n != 4000 {
		t.Fatalf("histogram count = %d", n)
	}
	if _, ok := r.LookupGauge("kinds_shared"); !ok {
		t.Fatal("gauge not registered")
	}
	if _, ok := r.LookupHistogram("kinds_shared"); !ok {
		t.Fatal("histogram not registered")
	}
	if _, ok := r.LookupGauge("absent"); ok {
		t.Fatal("phantom gauge")
	}
	if _, ok := r.LookupHistogram("absent"); ok {
		t.Fatal("phantom histogram")
	}
}

// Quantiles must track new observations after the sorted view has been
// cached — the cache invalidation path.
func TestMetricsHistogramQuantileCache(t *testing.T) {
	h := NewHistogram(1024)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("max quantile = %v", q)
	}
	// Cached now; repeated queries see the same view.
	if q := h.Quantile(0.5); q < 49 || q > 52 {
		t.Fatalf("p50 = %v", q)
	}
	h.Observe(1000)
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("quantile after invalidation = %v, want 1000", q)
	}
	snap := h.Snapshot()
	if snap.Count != 101 || snap.Max != 1000 || snap.P99 < 99 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(64)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("pre-reset state wrong: n=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("reset did not clear: n=%d sum=%v min=%v max=%v p99=%v",
			h.Count(), h.Sum(), h.Min(), h.Max(), h.Quantile(0.99))
	}
	if s := h.Snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("reset snapshot not empty: %+v", s)
	}
	// The min/max sentinels must be restored, not left at the previous
	// window's extremes.
	h.Observe(50)
	if h.Min() != 50 || h.Max() != 50 {
		t.Fatalf("post-reset extremes leak: min=%v max=%v", h.Min(), h.Max())
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 50 || s.Max != 50 || s.P95 != 50 {
		t.Fatalf("post-reset snapshot wrong: %+v", s)
	}
}

func TestSnapshotCarriesP95(t *testing.T) {
	h := NewHistogram(1 << 14)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.P95 < 940 || s.P95 > 960 {
		t.Fatalf("p95 = %v, want ~950", s.P95)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}
