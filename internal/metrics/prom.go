package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promQuantiles are the summary quantiles exported for every histogram.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// promSeries is one exportable series, split into metric family name
// and label set.
type promSeries struct {
	base   string // sanitized metric family name
	labels string // label set without braces ("" when unlabeled)
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// WritePrometheus renders every registered counter, gauge and histogram
// in the Prometheus text exposition format (text/plain; version 0.0.4).
// Histograms are rendered as summaries: one line per quantile plus
// `_sum` and `_count`. Series sharing a metric family name (same name,
// different label sets) are grouped under one # TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	series := make([]promSeries, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s := splitSeries(name)
		s.ctr = c
		series = append(series, s)
	}
	for name, g := range r.gauges {
		s := splitSeries(name)
		s.gauge = g
		series = append(series, s)
	}
	for name, h := range r.hists {
		s := splitSeries(name)
		s.hist = h
		series = append(series, s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	expos := append([]func(io.Writer) error(nil), r.expos...)
	r.mu.Unlock()

	sort.Slice(series, func(i, j int) bool {
		if series[i].base != series[j].base {
			return series[i].base < series[j].base
		}
		return series[i].labels < series[j].labels
	})

	prevFamily := ""
	for _, s := range series {
		if s.base != prevFamily {
			prevFamily = s.base
			if h, ok := help[s.base]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.base, helpEscape(h)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.base, s.kind()); err != nil {
				return err
			}
		}
		if err := s.write(w); err != nil {
			return err
		}
	}
	for _, fn := range expos {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// helpEscape escapes a HELP text per the exposition format (backslash
// and newline are the only special characters).
func helpEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func (s promSeries) kind() string {
	switch {
	case s.ctr != nil:
		return "counter"
	case s.gauge != nil:
		return "gauge"
	default:
		return "summary"
	}
}

func (s promSeries) write(w io.Writer) error {
	switch {
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", s.name(""), s.ctr.Value())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", s.name(""), s.gauge.Value())
		return err
	default:
		snap := s.hist.Snapshot()
		quants := [...]float64{snap.P50, snap.P90, snap.P95, snap.P99}
		for i, pq := range promQuantiles {
			if _, err := fmt.Fprintf(w, "%s %s\n",
				s.name(`quantile="`+pq.label+`"`), promFloat(quants[i])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.base, s.braced(), promFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.base, s.braced(), snap.Count)
		return err
	}
}

// name renders the full series name, merging extra into the label set.
func (s promSeries) name(extra string) string {
	labels := s.labels
	if extra != "" {
		if labels != "" {
			labels += ","
		}
		labels += extra
	}
	if labels == "" {
		return s.base
	}
	return s.base + "{" + labels + "}"
}

// braced renders the stored label set with braces ("" when unlabeled).
func (s promSeries) braced() string {
	if s.labels == "" {
		return ""
	}
	return "{" + s.labels + "}"
}

// splitSeries separates `name{label="v"}` into family name and labels,
// sanitizing the family name to the Prometheus charset.
func splitSeries(name string) promSeries {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	return promSeries{base: sanitizeMetricName(base), labels: labels}
}

// sanitizeMetricName maps an arbitrary name onto [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !validMetricByte(name[i], i) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	b := []byte(name)
	for i := range b {
		if !validMetricByte(b[i], i) {
			b[i] = '_'
		}
	}
	return string(b)
}

func validMetricByte(c byte, pos int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return pos > 0
	default:
		return false
	}
}

// promFloat renders a float in exposition format.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
