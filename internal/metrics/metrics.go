// Package metrics provides lightweight counters, gauges and latency
// histograms used by both the functional QTLS stack and the discrete-event
// performance model. All types are safe for concurrent use unless noted.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be >= 0) to the counter.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n as the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (possibly negative) to the current value.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records a distribution of values (typically durations in
// nanoseconds). It keeps exact samples up to a cap, after which it
// reservoir-samples, and it always tracks exact count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	count   int64
	sum     float64
	min     float64
	max     float64
	capN    int
	rng     uint64 // xorshift state for reservoir sampling
}

// NewHistogram returns a histogram that retains at most capN samples for
// percentile estimation. capN <= 0 selects a default of 16384.
func NewHistogram(capN int) *Histogram {
	if capN <= 0 {
		capN = 16384
	}
	return &Histogram{
		samples: make([]float64, 0, min(capN, 1024)),
		min:     math.Inf(1),
		max:     math.Inf(-1),
		capN:    capN,
		rng:     0x9e3779b97f4a7c15,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.capN {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling: replace a random existing sample with
	// probability capN/count.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	idx := h.rng % uint64(h.count)
	if idx < uint64(h.capN) {
		h.samples[idx] = v
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the retained
// samples. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count int64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P99   float64
}

// Snapshot returns a summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot treating values as nanoseconds.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		s.Count,
		time.Duration(s.Mean),
		time.Duration(s.P50),
		time.Duration(s.P90),
		time.Duration(s.P99),
		time.Duration(s.Max))
}

// Registry is a set of named counters, the export surface behind the
// server's stub_status output and the fault/degradation counters
// (qat_faults_injected, qat_op_timeouts, qat_sw_fallbacks,
// qat_instance_trips). Counter is get-or-create, so independent
// components can share one registry without coordination.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Lookup returns the named counter if it has been registered.
func (r *Registry) Lookup(name string) (*Counter, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	return c, ok
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the current value of every registered counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Meter measures a rate of events over a wall-clock interval.
type Meter struct {
	start time.Time
	n     atomic.Int64
}

// NewMeter returns a meter whose interval starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n events.
func (m *Meter) Mark(n int64) { m.n.Add(n) }

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n.Load()) / el
}

// Total returns the total number of marked events.
func (m *Meter) Total() int64 { return m.n.Load() }
