// Package metrics provides lightweight counters, gauges and latency
// histograms used by both the functional QTLS stack and the discrete-event
// performance model. All types are safe for concurrent use unless noted.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be >= 0) to the counter.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n as the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (possibly negative) to the current value.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records a distribution of values (typically durations in
// nanoseconds). It keeps exact samples up to a cap, after which it
// reservoir-samples, and it always tracks exact count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	count   int64
	sum     float64
	min     float64
	max     float64
	capN    int
	rng     uint64 // xorshift state for reservoir sampling

	// sorted caches the sorted view of samples for quantile queries;
	// Observe invalidates it, so repeated scrapes of an idle histogram
	// never re-sort and the scrape path stays off the Observe critical
	// section for all but one sort per batch of observations.
	sorted []float64
	dirty  bool
}

// NewHistogram returns a histogram that retains at most capN samples for
// percentile estimation. capN <= 0 selects a default of 16384.
func NewHistogram(capN int) *Histogram {
	if capN <= 0 {
		capN = 16384
	}
	return &Histogram{
		samples: make([]float64, 0, min(capN, 1024)),
		min:     math.Inf(1),
		max:     math.Inf(-1),
		capN:    capN,
		rng:     0x9e3779b97f4a7c15,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.capN {
		h.samples = append(h.samples, v)
		h.dirty = true
		return
	}
	// Reservoir sampling: replace a random existing sample with
	// probability capN/count.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	idx := h.rng % uint64(h.count)
	if idx < uint64(h.capN) {
		h.samples[idx] = v
		h.dirty = true
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Reset discards every observation, returning the histogram to its
// freshly constructed state (min/max sentinels included) while keeping
// the sample capacity. Windowed consumers that merge-and-reset between
// intervals depend on the sentinels being restored: a stale min/max
// would leak the previous window's extremes into the next Snapshot.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.sorted = h.sorted[:0]
	h.dirty = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// sortedLocked returns the sorted view of the retained samples,
// rebuilding the cache only when observations arrived since the last
// query. Callers must hold h.mu.
func (h *Histogram) sortedLocked() []float64 {
	if h.dirty || h.sorted == nil {
		h.sorted = append(h.sorted[:0], h.samples...)
		sort.Float64s(h.sorted)
		h.dirty = false
	}
	return h.sorted
}

// quantileOf interpolates the q-quantile from a sorted, non-empty view.
func quantileOf(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the retained
// samples. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return quantileOf(h.sortedLocked(), q)
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count int64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P95   float64
	P99   float64
}

// Snapshot returns a summary of the histogram. All fields come from one
// lock acquisition and at most one sort (reusing the cached sorted
// view), so a scrape does not stall concurrent Observe callers the way
// per-quantile copy+sort calls would.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.Min = h.min
	s.Max = h.max
	if len(h.samples) > 0 {
		sorted := h.sortedLocked()
		s.P50 = quantileOf(sorted, 0.50)
		s.P90 = quantileOf(sorted, 0.90)
		s.P95 = quantileOf(sorted, 0.95)
		s.P99 = quantileOf(sorted, 0.99)
	} else {
		// All samples evicted (e.g. Reset raced a merge): the exact
		// extremes still bound the distribution, so report them instead
		// of zeros — windowed merge paths read Min/Max from here.
		s.P50, s.P90, s.P95, s.P99 = s.Max, s.Max, s.Max, s.Max
	}
	return s
}

// String renders the snapshot treating values as nanoseconds.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		s.Count,
		time.Duration(s.Mean),
		time.Duration(s.P50),
		time.Duration(s.P90),
		time.Duration(s.P99),
		time.Duration(s.Max))
}

// Registry is a set of named counters, gauges and histograms — the
// export surface behind the server's stub_status output, the
// Prometheus-format /metrics endpoint and the fault/degradation
// counters (qat_faults_injected, qat_op_timeouts, qat_sw_fallbacks,
// qat_instance_trips). Every accessor is get-or-create, so independent
// components can share one registry without coordination. A name may
// carry a Prometheus label set (`qtls_inflight{worker="0"}`); the
// exposition writer groups such series under one metric family.
// Counters, gauges and histograms live in separate namespaces; reusing
// one name across kinds is allowed but makes for a confusing scrape, so
// don't.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
	expos    []func(io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// SetHelp attaches a # HELP line to a metric family (the base name,
// without labels). The exposition writer emits it immediately before
// the family's # TYPE line.
func (r *Registry) SetHelp(family, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[sanitizeMetricName(family)] = help
}

// AddExposition appends a custom exposition section: fn is invoked at
// the end of every WritePrometheus call with the same writer, so
// subsystems with their own series shapes (the flight recorder's
// windowed summaries) can extend /metrics without the registry learning
// their types. fn must write complete, well-formed exposition lines.
func (r *Registry) AddExposition(fn func(io.Writer) error) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expos = append(r.expos, fn)
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use
// with the default sample cap.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(0)
		r.hists[name] = h
	}
	return h
}

// LookupGauge returns the named gauge if it has been registered.
func (r *Registry) LookupGauge(name string) (*Gauge, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	return g, ok
}

// LookupHistogram returns the named histogram if it has been registered.
func (r *Registry) LookupHistogram(name string) (*Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	return h, ok
}

// Lookup returns the named counter if it has been registered.
func (r *Registry) Lookup(name string) (*Counter, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	return c, ok
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the current value of every registered counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Meter measures a rate of events over a wall-clock interval.
type Meter struct {
	start time.Time
	n     atomic.Int64

	mu    sync.Mutex // guards the IntervalRate read-and-reset window
	lastN int64
	lastT time.Time
}

// NewMeter returns a meter whose interval starts now.
func NewMeter() *Meter {
	now := time.Now()
	return &Meter{start: now, lastT: now}
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.n.Add(n) }

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n.Load()) / el
}

// IntervalRate returns events per second since the previous
// IntervalRate call (or since creation, on the first call) and starts a
// new interval. Scrapers use it for per-scrape throughput that isn't
// diluted by process lifetime the way Rate is.
func (m *Meter) IntervalRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	n := m.n.Load()
	el := now.Sub(m.lastT).Seconds()
	dn := n - m.lastN
	m.lastN, m.lastT = n, now
	if el <= 0 {
		return 0
	}
	return float64(dn) / el
}

// Total returns the total number of marked events.
func (m *Meter) Total() int64 { return m.n.Load() }
