//go:build linux

// Package netpoll provides the non-blocking socket and epoll(7) machinery
// an event-driven web server is built on (§2.2): a Poller wrapping an
// epoll instance, non-blocking TCP listeners and connections, and a
// NotifyPipe used by the FD-based async-event notification scheme (§3.4).
//
// The event-driven architecture "works with network sockets in an
// asynchronous (non-blocking) mode and monitors them with an event-based
// I/O multiplexing mechanism" — this package is that mechanism, built
// directly on the standard library's syscall package so the worker's event
// loop owns scheduling (no goroutine-per-connection).
//
// One simplification relative to raw sockets: Conn.Write never fails with
// EAGAIN. Unsent bytes are buffered in user space and flushed when the
// poller reports the socket writable (Conn.Flush). This keeps the TLS
// record layer free of partial-write bookkeeping; the event loop registers
// EPOLLOUT interest whenever a connection has pending output.
package netpoll

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"syscall"
)

// ErrWouldBlock is returned by Conn.Read and Listener.Accept when the
// operation would block. It implements the WouldBlock interface the TLS
// layer translates into its want-read condition.
var ErrWouldBlock = &wouldBlockError{}

type wouldBlockError struct{}

func (*wouldBlockError) Error() string    { return "netpoll: operation would block" }
func (*wouldBlockError) WouldBlock() bool { return true }

// Event is one readiness notification from the poller.
type Event struct {
	FD       int
	Readable bool
	Writable bool
	Closed   bool // peer hung up or error condition
}

// Poller wraps an epoll instance.
type Poller struct {
	epfd   int
	events []syscall.EpollEvent
}

// NewPoller creates an epoll instance.
func NewPoller() (*Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("netpoll: epoll_create1: %w", err)
	}
	return &Poller{epfd: epfd, events: make([]syscall.EpollEvent, 256)}, nil
}

// Close releases the epoll instance.
func (p *Poller) Close() error { return syscall.Close(p.epfd) }

func epollEvents(read, write bool) uint32 {
	var ev uint32 = syscall.EPOLLRDHUP
	if read {
		ev |= syscall.EPOLLIN
	}
	if write {
		ev |= syscall.EPOLLOUT
	}
	return ev
}

// Add registers fd with the given interests.
func (p *Poller) Add(fd int, read, write bool) error {
	ev := syscall.EpollEvent{Events: epollEvents(read, write), Fd: int32(fd)}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		return fmt.Errorf("netpoll: epoll_ctl add fd %d: %w", fd, err)
	}
	return nil
}

// Mod updates the interests of a registered fd.
func (p *Poller) Mod(fd int, read, write bool) error {
	ev := syscall.EpollEvent{Events: epollEvents(read, write), Fd: int32(fd)}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev); err != nil {
		return fmt.Errorf("netpoll: epoll_ctl mod fd %d: %w", fd, err)
	}
	return nil
}

// Del unregisters fd.
func (p *Poller) Del(fd int) error {
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil); err != nil {
		return fmt.Errorf("netpoll: epoll_ctl del fd %d: %w", fd, err)
	}
	return nil
}

// Wait blocks up to timeoutMs (-1 = forever, 0 = poll) and returns ready
// events. The returned slice is reused across calls.
func (p *Poller) Wait(timeoutMs int) ([]Event, error) {
	for {
		n, err := syscall.EpollWait(p.epfd, p.events, timeoutMs)
		if err != nil {
			if errors.Is(err, syscall.EINTR) {
				continue
			}
			return nil, fmt.Errorf("netpoll: epoll_wait: %w", err)
		}
		out := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			e := p.events[i]
			out = append(out, Event{
				FD:       int(e.Fd),
				Readable: e.Events&(syscall.EPOLLIN|syscall.EPOLLPRI) != 0,
				Writable: e.Events&syscall.EPOLLOUT != 0,
				Closed:   e.Events&(syscall.EPOLLHUP|syscall.EPOLLRDHUP|syscall.EPOLLERR) != 0,
			})
		}
		return out, nil
	}
}

// Listener is a non-blocking TCP listener.
type Listener struct {
	fd   int
	port int
}

// Listen opens a non-blocking IPv4 TCP listener on addr ("host:port";
// empty host means all interfaces, port 0 picks a free port).
func Listen(addr string) (*Listener, error) {
	tcpAddr, err := net.ResolveTCPAddr("tcp4", addr)
	if err != nil {
		return nil, err
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return nil, fmt.Errorf("netpoll: socket: %w", err)
	}
	if err := syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1); err != nil {
		syscall.Close(fd)
		return nil, err
	}
	// SO_REUSEPORT (15 on Linux; absent from the stdlib syscall package)
	// lets every worker own its own listening socket on the shared port,
	// the way multiple Nginx workers accept in a balanced manner (§2.2).
	const soReusePort = 15
	if err := syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, soReusePort, 1); err != nil {
		syscall.Close(fd)
		return nil, err
	}
	var sa syscall.SockaddrInet4
	sa.Port = tcpAddr.Port
	if ip4 := tcpAddr.IP.To4(); ip4 != nil {
		copy(sa.Addr[:], ip4)
	}
	if err := syscall.Bind(fd, &sa); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("netpoll: bind %s: %w", addr, err)
	}
	if err := syscall.Listen(fd, 1024); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("netpoll: listen: %w", err)
	}
	bound, err := syscall.Getsockname(fd)
	if err != nil {
		syscall.Close(fd)
		return nil, err
	}
	l := &Listener{fd: fd}
	if sa4, ok := bound.(*syscall.SockaddrInet4); ok {
		l.port = sa4.Port
	}
	return l, nil
}

// FD returns the listening socket descriptor (for poller registration).
func (l *Listener) FD() int { return l.fd }

// Port returns the bound port.
func (l *Listener) Port() int { return l.port }

// Addr returns the listener's address string.
func (l *Listener) Addr() string { return "127.0.0.1:" + strconv.Itoa(l.port) }

// Accept accepts one connection; it returns ErrWouldBlock when no
// connection is pending.
func (l *Listener) Accept() (*Conn, error) {
	for {
		nfd, _, err := syscall.Accept4(l.fd, syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC)
		if err != nil {
			switch {
			case errors.Is(err, syscall.EINTR):
				continue
			case errors.Is(err, syscall.EAGAIN):
				return nil, ErrWouldBlock
			default:
				return nil, fmt.Errorf("netpoll: accept: %w", err)
			}
		}
		if err := syscall.SetsockoptInt(nfd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1); err != nil {
			syscall.Close(nfd)
			return nil, err
		}
		return &Conn{fd: nfd}, nil
	}
}

// Close closes the listening socket.
func (l *Listener) Close() error { return syscall.Close(l.fd) }

// Conn is a non-blocking TCP connection with user-space write buffering.
type Conn struct {
	fd      int
	pending []byte // unflushed output
	closed  bool
}

// Dial opens a non-blocking connection to addr, waiting for the connect
// to complete (the dial itself is synchronous for test/client
// convenience; the returned conn is non-blocking).
func Dial(addr string) (*Conn, error) {
	tcpAddr, err := net.ResolveTCPAddr("tcp4", addr)
	if err != nil {
		return nil, err
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return nil, err
	}
	var sa syscall.SockaddrInet4
	sa.Port = tcpAddr.Port
	if ip4 := tcpAddr.IP.To4(); ip4 != nil {
		copy(sa.Addr[:], ip4)
	}
	if err := syscall.Connect(fd, &sa); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("netpoll: connect %s: %w", addr, err)
	}
	if err := syscall.SetNonblock(fd, true); err != nil {
		syscall.Close(fd)
		return nil, err
	}
	if err := syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1); err != nil {
		syscall.Close(fd)
		return nil, err
	}
	return &Conn{fd: fd}, nil
}

// FD returns the socket descriptor.
func (c *Conn) FD() int { return c.fd }

// Read fills p with available bytes; it returns ErrWouldBlock when the
// socket has no data and io.EOF-like (0, nil) is never returned — a
// closed peer yields (0, io.EOF semantics via syscall read == 0) mapped
// to an error by the caller. For simplicity a zero-byte read is reported
// as a closed connection error.
func (c *Conn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, errors.New("netpoll: read on closed connection")
	}
	for {
		n, err := syscall.Read(c.fd, p)
		if err != nil {
			switch {
			case errors.Is(err, syscall.EINTR):
				continue
			case errors.Is(err, syscall.EAGAIN):
				return 0, ErrWouldBlock
			default:
				return 0, fmt.Errorf("netpoll: read: %w", err)
			}
		}
		if n == 0 {
			return 0, errEOF
		}
		return n, nil
	}
}

var errEOF = errors.New("EOF")

// IsEOF reports whether err marks an orderly peer shutdown.
func IsEOF(err error) bool { return errors.Is(err, errEOF) }

// Write queues p for transmission. It first attempts a direct write; any
// remainder is buffered and flushed by Flush when the poller reports the
// socket writable. Write never blocks and always accounts the full length.
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, errors.New("netpoll: write on closed connection")
	}
	if len(c.pending) > 0 {
		c.pending = append(c.pending, p...)
		if err := c.Flush(); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	sent := 0
	for sent < len(p) {
		n, err := syscall.Write(c.fd, p[sent:])
		if err != nil {
			switch {
			case errors.Is(err, syscall.EINTR):
				continue
			case errors.Is(err, syscall.EAGAIN):
				c.pending = append(c.pending, p[sent:]...)
				return len(p), nil
			default:
				return sent, fmt.Errorf("netpoll: write: %w", err)
			}
		}
		sent += n
	}
	return len(p), nil
}

// Flush attempts to drain the pending output buffer.
func (c *Conn) Flush() error {
	for len(c.pending) > 0 {
		n, err := syscall.Write(c.fd, c.pending)
		if err != nil {
			switch {
			case errors.Is(err, syscall.EINTR):
				continue
			case errors.Is(err, syscall.EAGAIN):
				return nil
			default:
				return fmt.Errorf("netpoll: flush: %w", err)
			}
		}
		rest := copy(c.pending, c.pending[n:])
		c.pending = c.pending[:rest]
	}
	return nil
}

// HasPending reports whether unflushed output remains.
func (c *Conn) HasPending() bool { return len(c.pending) > 0 }

// Close closes the socket.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return syscall.Close(c.fd)
}

// Abort closes the socket with an immediate TCP reset (SO_LINGER with a
// zero timeout): unsent data is discarded and the peer sees RST instead
// of FIN. Admission control sheds just-accepted connections this way —
// the client learns immediately, and neither side spends TLS bytes.
func (c *Conn) Abort() error {
	if c.closed {
		return nil
	}
	c.closed = true
	syscall.SetsockoptLinger(c.fd, syscall.SOL_SOCKET, syscall.SO_LINGER,
		&syscall.Linger{Onoff: 1, Linger: 0})
	return syscall.Close(c.fd)
}

// NotifyPipe is a non-blocking self-pipe used by the FD-based async event
// notification scheme: the QAT response callback writes a byte to wake the
// worker's epoll (incurring the user/kernel switches the kernel-bypass
// scheme avoids, §3.4).
type NotifyPipe struct {
	r, w int
}

// NewNotifyPipe creates the pipe pair.
func NewNotifyPipe() (*NotifyPipe, error) {
	var fds [2]int
	if err := syscall.Pipe2(fds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		return nil, fmt.Errorf("netpoll: pipe2: %w", err)
	}
	return &NotifyPipe{r: fds[0], w: fds[1]}, nil
}

// ReadFD returns the poll-side descriptor to register with the poller.
func (np *NotifyPipe) ReadFD() int { return np.r }

// Notify wakes the poller by writing one byte (a real syscall — this is
// the cost the kernel-bypass scheme eliminates).
func (np *NotifyPipe) Notify() error {
	var b [1]byte
	for {
		_, err := syscall.Write(np.w, b[:])
		switch {
		case err == nil:
			return nil
		case errors.Is(err, syscall.EINTR):
			continue
		case errors.Is(err, syscall.EAGAIN):
			// Pipe full: the reader is already guaranteed to wake.
			return nil
		default:
			return fmt.Errorf("netpoll: notify: %w", err)
		}
	}
}

// Drain consumes all queued notification bytes, returning how many were
// read.
func (np *NotifyPipe) Drain() int {
	var buf [256]byte
	total := 0
	for {
		n, err := syscall.Read(np.r, buf[:])
		if n > 0 {
			total += n
		}
		if err != nil || n < len(buf) {
			return total
		}
	}
}

// Close closes both ends.
func (np *NotifyPipe) Close() error {
	err1 := syscall.Close(np.r)
	err2 := syscall.Close(np.w)
	if err1 != nil {
		return err1
	}
	return err2
}
