//go:build linux

package netpoll

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestListenAcceptWouldBlock(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Port() == 0 {
		t.Fatal("no port bound")
	}
	if _, err := l.Accept(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("Accept on idle listener = %v, want would-block", err)
	}
}

func acceptOne(t *testing.T, l *Listener, p *Poller) *Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := l.Accept()
		if err == nil {
			return conn
		}
		if !errors.Is(err, ErrWouldBlock) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("accept timeout")
		}
		if _, err := p.Wait(100); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEchoOverPoller(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	poller, err := NewPoller()
	if err != nil {
		t.Fatal(err)
	}
	defer poller.Close()
	if err := poller.Add(l.FD(), true, false); err != nil {
		t.Fatal(err)
	}

	cli, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	srv := acceptOne(t, l, poller)
	defer srv.Close()
	if err := poller.Add(srv.FD(), true, false); err != nil {
		t.Fatal(err)
	}

	msg := []byte("ping over epoll")
	if _, err := cli.Write(msg); err != nil {
		t.Fatal(err)
	}

	// Wait until the server side is readable, then echo.
	buf := make([]byte, 64)
	var got []byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < len(msg) {
		events, err := poller.Wait(100)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if ev.FD == srv.FD() && ev.Readable {
				n, err := srv.Read(buf)
				if err != nil && !errors.Is(err, ErrWouldBlock) {
					t.Fatal(err)
				}
				got = append(got, buf[:n]...)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("read timeout")
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestReadWouldBlock(t *testing.T) {
	l, _ := Listen("127.0.0.1:0")
	defer l.Close()
	poller, _ := NewPoller()
	defer poller.Close()
	poller.Add(l.FD(), true, false)
	cli, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := acceptOne(t, l, poller)
	defer srv.Close()

	buf := make([]byte, 8)
	_, err = srv.Read(buf)
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("Read = %v, want would-block", err)
	}
	var wb interface{ WouldBlock() bool }
	if !errors.As(err, &wb) || !wb.WouldBlock() {
		t.Fatal("error does not implement WouldBlock")
	}
}

func TestPeerCloseYieldsEOF(t *testing.T) {
	l, _ := Listen("127.0.0.1:0")
	defer l.Close()
	poller, _ := NewPoller()
	defer poller.Close()
	poller.Add(l.FD(), true, false)
	cli, _ := Dial(l.Addr())
	srv := acceptOne(t, l, poller)
	defer srv.Close()
	cli.Close()

	buf := make([]byte, 8)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := srv.Read(buf)
		if IsEOF(err) {
			return
		}
		if err != nil && !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("Read = %v, want EOF", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw EOF")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteBuffersLargePayload(t *testing.T) {
	l, _ := Listen("127.0.0.1:0")
	defer l.Close()
	poller, _ := NewPoller()
	defer poller.Close()
	poller.Add(l.FD(), true, false)
	cli, _ := Dial(l.Addr())
	defer cli.Close()
	srv := acceptOne(t, l, poller)
	defer srv.Close()

	// Overwhelm the socket buffer: Write must accept everything.
	payload := bytes.Repeat([]byte{0x5c}, 4<<20)
	n, err := srv.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}

	got := make([]byte, 0, len(payload))
	buf := make([]byte, 64<<10)
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < len(payload) {
		// Reader drains while the writer flushes.
		if srv.HasPending() {
			if err := srv.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		n, err := cli.Read(buf)
		if err != nil && !errors.Is(err, ErrWouldBlock) {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
		if time.Now().After(deadline) {
			t.Fatalf("read %d/%d bytes", len(got), len(payload))
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	if srv.HasPending() {
		t.Fatal("pending data after full drain")
	}
}

func TestPollerModAndDel(t *testing.T) {
	l, _ := Listen("127.0.0.1:0")
	defer l.Close()
	poller, _ := NewPoller()
	defer poller.Close()
	if err := poller.Add(l.FD(), true, false); err != nil {
		t.Fatal(err)
	}
	if err := poller.Mod(l.FD(), true, true); err != nil {
		t.Fatal(err)
	}
	if err := poller.Del(l.FD()); err != nil {
		t.Fatal(err)
	}
	// Double-del fails.
	if err := poller.Del(l.FD()); err == nil {
		t.Fatal("expected error deleting unregistered fd")
	}
}

func TestNotifyPipe(t *testing.T) {
	np, err := NewNotifyPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer np.Close()
	poller, _ := NewPoller()
	defer poller.Close()
	if err := poller.Add(np.ReadFD(), true, false); err != nil {
		t.Fatal(err)
	}

	// No events before notify.
	events, err := poller.Wait(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("spurious events: %+v", events)
	}

	for i := 0; i < 3; i++ {
		if err := np.Notify(); err != nil {
			t.Fatal(err)
		}
	}
	events, err = poller.Wait(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].FD != np.ReadFD() || !events[0].Readable {
		t.Fatalf("events = %+v", events)
	}
	if n := np.Drain(); n != 3 {
		t.Fatalf("drained %d bytes, want 3", n)
	}
	// Drained: no further events.
	events, _ = poller.Wait(0)
	if len(events) != 0 {
		t.Fatal("events after drain")
	}
}

func TestConnClosedOps(t *testing.T) {
	l, _ := Listen("127.0.0.1:0")
	defer l.Close()
	cli, _ := Dial(l.Addr())
	cli.Close()
	cli.Close() // idempotent
	if _, err := cli.Read(make([]byte, 4)); err == nil {
		t.Fatal("read on closed conn succeeded")
	}
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write on closed conn succeeded")
	}
}

func TestListenErrors(t *testing.T) {
	if _, err := Listen("not-an-addr"); err == nil {
		t.Fatal("bad address accepted")
	}
	// Binding a privileged port as non-root usually fails; binding the
	// same port twice with different sockets works due to SO_REUSEPORT,
	// so instead verify a bogus host fails.
	if _, err := Listen("256.256.256.256:0"); err == nil {
		t.Fatal("bogus host accepted")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("not-an-addr"); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}

func TestListenerAddrFormat(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if want := "127.0.0.1:"; len(l.Addr()) <= len(want) || l.Addr()[:len(want)] != want {
		t.Fatalf("Addr = %q", l.Addr())
	}
}

func TestWouldBlockErrorInterface(t *testing.T) {
	if ErrWouldBlock.Error() == "" || !ErrWouldBlock.WouldBlock() {
		t.Fatal("ErrWouldBlock malformed")
	}
}

func TestNotifyPipeDrainEmpty(t *testing.T) {
	np, err := NewNotifyPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer np.Close()
	if n := np.Drain(); n != 0 {
		t.Fatalf("Drain on empty pipe = %d", n)
	}
}

func TestSO_REUSEPORTSharing(t *testing.T) {
	// Two listeners on the same port — the multi-worker accept model.
	l1, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := Listen(l1.Addr())
	if err != nil {
		t.Fatalf("second listener on %s: %v", l1.Addr(), err)
	}
	defer l2.Close()
	if l1.Port() != l2.Port() {
		t.Fatalf("ports differ: %d vs %d", l1.Port(), l2.Port())
	}
}
