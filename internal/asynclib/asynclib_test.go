package asynclib

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestJobRunsToCompletion(t *testing.T) {
	ran := false
	st, job, err := StartJob(nil, func(*Job) error {
		ran = true
		return nil
	})
	if st != StatusFinish || err != nil {
		t.Fatalf("StartJob = %v, %v", st, err)
	}
	if !ran {
		t.Fatal("job function did not run")
	}
	if !job.Finished() {
		t.Fatal("Finished = false")
	}
}

func TestJobErrorPropagates(t *testing.T) {
	sentinel := errors.New("bad")
	st, job, err := StartJob(nil, func(*Job) error { return sentinel })
	if st != StatusFinish {
		t.Fatalf("status = %v", st)
	}
	if !errors.Is(err, sentinel) || !errors.Is(job.Err(), sentinel) {
		t.Fatalf("err = %v / %v", err, job.Err())
	}
}

func TestPauseAndResume(t *testing.T) {
	var trace []string
	st, job, err := StartJob(nil, func(j *Job) error {
		trace = append(trace, "start")
		if err := j.Pause(); err != nil {
			return err
		}
		trace = append(trace, "resumed")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusPause {
		t.Fatalf("status = %v, want pause", st)
	}
	if len(trace) != 1 || trace[0] != "start" {
		t.Fatalf("trace = %v", trace)
	}
	st, _, err = StartJob(job, nil)
	if st != StatusFinish || err != nil {
		t.Fatalf("resume = %v, %v", st, err)
	}
	if len(trace) != 2 || trace[1] != "resumed" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestMultiplePauses(t *testing.T) {
	const pauses = 10
	count := 0
	st, job, err := StartJob(nil, func(j *Job) error {
		for i := 0; i < pauses; i++ {
			count++
			if err := j.Pause(); err != nil {
				return err
			}
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resumes := 0
	for st == StatusPause {
		resumes++
		st, _, err = StartJob(job, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if resumes != pauses {
		t.Fatalf("resumes = %d, want %d", resumes, pauses)
	}
	if count != pauses+1 {
		t.Fatalf("count = %d", count)
	}
}

func TestResumeFinishedJobFails(t *testing.T) {
	_, job, _ := StartJob(nil, func(*Job) error { return nil })
	st, _, err := StartJob(job, nil)
	if st != StatusErr || !errors.Is(err, ErrJobFinished) {
		t.Fatalf("resume finished = %v, %v", st, err)
	}
}

func TestStartJobNilFn(t *testing.T) {
	st, _, err := StartJob(nil, nil)
	if st != StatusErr || err == nil {
		t.Fatalf("StartJob(nil,nil) = %v, %v", st, err)
	}
}

func TestPauseOutsideJob(t *testing.T) {
	var j *Job
	if err := j.Pause(); !errors.Is(err, ErrNotInJob) {
		t.Fatalf("err = %v, want ErrNotInJob", err)
	}
}

func TestManyInterleavedJobs(t *testing.T) {
	// Simulates the event-driven worker: many connections' jobs paused and
	// resumed in arbitrary (here round-robin) order in one goroutine.
	const n = 50
	jobs := make([]*Job, n)
	progress := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		st, job, err := StartJob(nil, func(j *Job) error {
			for step := 0; step < 3; step++ {
				progress[i]++
				if err := j.Pause(); err != nil {
					return err
				}
			}
			progress[i]++
			return nil
		})
		if err != nil || st != StatusPause {
			t.Fatalf("job %d start: %v %v", i, st, err)
		}
		jobs[i] = job
	}
	active := n
	for active > 0 {
		for i := 0; i < n; i++ {
			if jobs[i] == nil {
				continue
			}
			st, _, err := StartJob(jobs[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			if st == StatusFinish {
				jobs[i] = nil
				active--
			}
		}
	}
	for i, p := range progress {
		if p != 4 {
			t.Fatalf("job %d progress = %d, want 4", i, p)
		}
	}
}

func TestWaitCtxFD(t *testing.T) {
	w := NewWaitCtx()
	if _, ok := w.FD(); ok {
		t.Fatal("new wait ctx should have no FD")
	}
	w.SetFD(7)
	fd, ok := w.FD()
	if !ok || fd != 7 {
		t.Fatalf("FD = %d, %v", fd, ok)
	}
	w.ClearFD()
	if _, ok := w.FD(); ok {
		t.Fatal("FD should be cleared")
	}
}

func TestWaitCtxCallback(t *testing.T) {
	w := NewWaitCtx()
	if w.Notify() {
		t.Fatal("Notify without callback should report false")
	}
	var got any
	w.SetCallback(func(arg any) { got = arg }, "handler-info")
	cb, arg, ok := w.Callback()
	if !ok || cb == nil || arg != "handler-info" {
		t.Fatalf("Callback = (cb nil: %v) %v %v", cb == nil, arg, ok)
	}
	if !w.Notify() {
		t.Fatal("Notify should fire")
	}
	if got != "handler-info" {
		t.Fatalf("callback arg = %v", got)
	}
}

func TestJobWaitCtxLazyInit(t *testing.T) {
	_, job, _ := StartJob(nil, func(j *Job) error { return j.Pause() })
	w1 := job.WaitCtx()
	w2 := job.WaitCtx()
	if w1 == nil || w1 != w2 {
		t.Fatal("WaitCtx should be stable")
	}
	StartJob(job, nil)
}

func TestStatusStrings(t *testing.T) {
	if StatusFinish.String() != "ASYNC_FINISH" ||
		StatusPause.String() != "ASYNC_PAUSE" ||
		StatusErr.String() != "ASYNC_ERR" {
		t.Fatal("unexpected status names")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status should still render")
	}
}

func TestStackOpLifecycle(t *testing.T) {
	var op StackOp
	if op.State() != StackIdle {
		t.Fatalf("initial state = %v", op.State())
	}
	op.MarkInflight()
	if op.State() != StackInflight {
		t.Fatalf("state = %v", op.State())
	}
	op.MarkReady(42, nil)
	if op.State() != StackReady {
		t.Fatalf("state = %v", op.State())
	}
	res, err := op.Consume()
	if res != 42 || err != nil {
		t.Fatalf("Consume = %v, %v", res, err)
	}
	if op.State() != StackIdle {
		t.Fatalf("state after consume = %v", op.State())
	}
}

func TestStackOpRetryPath(t *testing.T) {
	var op StackOp
	op.MarkRetry()
	if op.State() != StackRetry {
		t.Fatalf("state = %v", op.State())
	}
	op.MarkRetry() // retry can repeat
	op.MarkInflight()
	op.MarkReady(nil, errors.New("x"))
	if _, err := op.Consume(); err == nil {
		t.Fatal("expected error")
	}
}

func TestStackOpInvalidTransitionsPanic(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*StackOp)
	}{
		{"ready without inflight", func(o *StackOp) { o.MarkReady(nil, nil) }},
		{"consume idle", func(o *StackOp) { o.Consume() }},
		{"inflight twice", func(o *StackOp) { o.MarkInflight(); o.MarkInflight() }},
		{"retry while inflight", func(o *StackOp) { o.MarkInflight(); o.MarkRetry() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			var op StackOp
			tc.fn(&op)
		})
	}
}

func TestStackOpReset(t *testing.T) {
	var op StackOp
	op.MarkInflight()
	op.MarkReady("r", nil)
	op.Reset()
	if op.State() != StackIdle {
		t.Fatalf("state = %v", op.State())
	}
	// After reset the op is reusable.
	op.MarkInflight()
	op.MarkReady("s", nil)
	if res, _ := op.Consume(); res != "s" {
		t.Fatalf("res = %v", res)
	}
}

// Property: for any sequence of pause counts, driving jobs to completion
// takes exactly pauses+1 StartJob calls.
func TestJobDriveCountProperty(t *testing.T) {
	f := func(pausesRaw uint8) bool {
		pauses := int(pausesRaw % 20)
		st, job, err := StartJob(nil, func(j *Job) error {
			for i := 0; i < pauses; i++ {
				if err := j.Pause(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		calls := 1
		for st == StatusPause {
			st, _, err = StartJob(job, nil)
			if err != nil {
				return false
			}
			calls++
		}
		return calls == pauses+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStackStateStrings(t *testing.T) {
	want := map[StackState]string{StackIdle: "idle", StackInflight: "inflight", StackReady: "ready", StackRetry: "retry"}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("String(%d) = %q", int32(s), s.String())
		}
	}
	if StackState(12).String() == "" {
		t.Fatal("unknown state should render")
	}
}

func TestJobStats(t *testing.T) {
	before := Stats()
	status, job, err := StartJob(nil, func(j *Job) error {
		if err := j.Pause(); err != nil {
			return err
		}
		return j.Pause()
	})
	if status != StatusPause || err != nil {
		t.Fatalf("first start: %v %v", status, err)
	}
	for i := 0; i < 2; i++ {
		status, _, err = StartJob(job, nil)
		if err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
	}
	if status != StatusFinish {
		t.Fatalf("final status = %v", status)
	}
	d := Stats()
	got := JobStats{
		Started:  d.Started - before.Started,
		Paused:   d.Paused - before.Paused,
		Resumed:  d.Resumed - before.Resumed,
		Finished: d.Finished - before.Finished,
	}
	want := JobStats{Started: 1, Paused: 2, Resumed: 2, Finished: 1}
	if got != want {
		t.Fatalf("stats delta = %+v, want %+v", got, want)
	}
}
