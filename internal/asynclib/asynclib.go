// Package asynclib re-implements the OpenSSL asynchronous-job
// infrastructure the QTLS paper relies on (§4.1): cooperative pause and
// resumption of an in-progress crypto-bearing operation, so that an offload
// job can be suspended immediately after a crypto request is submitted to
// the accelerator and resumed when the response has been retrieved.
//
// Two implementations are provided, matching the paper's two designs:
//
//   - Fiber async (Fig. 6): Job wraps the running piece of a TLS connection
//     in a cooperative fiber. OpenSSL uses makecontext/swapcontext fibers;
//     here a goroutine plus two synchronization channels provide identical
//     pause/resume semantics (the goroutine is parked, control returns to
//     the caller, and a later StartJob jumps straight back to the pause
//     point). This is the mode included in OpenSSL 1.1.0+ and the one the
//     evaluation uses.
//
//   - Stack async (Fig. 5): StackState is the state flag driving the
//     intrusive alternative, where the crypto API alters its control flow
//     according to an inflight/ready/retry flag and the caller re-invokes
//     the same TLS API to consume the result.
//
// A WaitCtx carries the notification plumbing attached to a job: an
// optional file descriptor (FD-based notification) and an optional
// application-level callback with argument (the kernel-bypass notification
// scheme, §4.4 — SSL_set_async_callback / ASYNC_WAIT_CTX_get_callback).
package asynclib

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// jobStats counts fiber lifecycle events process-wide. The counters are
// cumulative and monotonic; /metrics exports them as gauges derived from
// Stats() so the balance started == finished + (paused - resumed) is
// directly visible when hunting leaked fibers.
var jobStats struct {
	started  atomic.Int64
	paused   atomic.Int64
	resumed  atomic.Int64
	finished atomic.Int64
}

// JobStats is a point-in-time view of the fiber lifecycle counters.
type JobStats struct {
	// Started counts jobs created by StartJob.
	Started int64
	// Paused counts Pause calls that suspended a fiber.
	Paused int64
	// Resumed counts StartJob calls that context-swapped into a paused
	// fiber.
	Resumed int64
	// Finished counts job functions that ran to completion.
	Finished int64
}

// Stats returns the cumulative fiber lifecycle counters.
func Stats() JobStats {
	return JobStats{
		Started:  jobStats.started.Load(),
		Paused:   jobStats.paused.Load(),
		Resumed:  jobStats.resumed.Load(),
		Finished: jobStats.finished.Load(),
	}
}

// Status is the result of driving a job with StartJob.
type Status int

const (
	// StatusFinish indicates the job function ran to completion
	// (ASYNC_FINISH).
	StatusFinish Status = iota
	// StatusPause indicates the job paused after submitting an async
	// crypto request; resume it later with StartJob (ASYNC_PAUSE).
	StatusPause
	// StatusErr indicates the job could not be started or resumed.
	StatusErr
)

// String returns the OpenSSL-style name of the status.
func (s Status) String() string {
	switch s {
	case StatusFinish:
		return "ASYNC_FINISH"
	case StatusPause:
		return "ASYNC_PAUSE"
	case StatusErr:
		return "ASYNC_ERR"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNotInJob is returned by Pause when called outside a running job.
var ErrNotInJob = errors.New("asynclib: pause outside an async job")

// ErrJobFinished is returned by StartJob when asked to resume a job that
// has already finished.
var ErrJobFinished = errors.New("asynclib: job already finished")

// WaitCtx is the wait context associated with an async job
// (ASYNC_WAIT_CTX). It carries either a notification file descriptor, an
// application-level callback, or both.
type WaitCtx struct {
	fd    int
	hasFD bool

	callback    func(arg any)
	callbackArg any
}

// NewWaitCtx returns an empty wait context.
func NewWaitCtx() *WaitCtx { return &WaitCtx{fd: -1} }

// SetFD associates a notification file descriptor (the set-FD API, §4.4).
func (w *WaitCtx) SetFD(fd int) {
	w.fd = fd
	w.hasFD = true
}

// FD returns the associated notification descriptor, if any (the get-FD
// API, §4.4).
func (w *WaitCtx) FD() (fd int, ok bool) { return w.fd, w.hasFD }

// ClearFD removes the descriptor association.
func (w *WaitCtx) ClearFD() {
	w.fd = -1
	w.hasFD = false
}

// SetCallback installs the application-level callback and its argument
// used by the kernel-bypass notification scheme. The paper adds exactly
// these two members — callback and callback_arg — to the ASYNC_JOB
// structure (§4.4).
func (w *WaitCtx) SetCallback(cb func(arg any), arg any) {
	w.callback = cb
	w.callbackArg = arg
}

// Callback returns the installed callback and argument
// (ASYNC_WAIT_CTX_get_callback); ok is false when none is set.
func (w *WaitCtx) Callback() (cb func(arg any), arg any, ok bool) {
	return w.callback, w.callbackArg, w.callback != nil
}

// Notify fires the kernel-bypass callback if one is installed and reports
// whether it did. The QAT response callback uses this to enqueue the async
// handler onto the application's async queue without touching the kernel.
func (w *WaitCtx) Notify() bool {
	if w.callback == nil {
		return false
	}
	w.callback(w.callbackArg)
	return true
}

// Job is a fiber-based ASYNC_JOB: a suspended or running execution of a
// job function. The zero value is not usable; obtain jobs from StartJob.
//
// A Job is owned by a single driving goroutine (the event-loop worker).
// StartJob must not be called concurrently for the same job.
type Job struct {
	wctx *WaitCtx

	resume chan struct{} // caller -> fiber: continue after pause
	yield  chan yieldMsg // fiber -> caller: paused or finished

	started  bool
	finished bool
	err      error
}

type yieldMsg struct {
	finished bool
	err      error
}

// WaitCtx returns the job's wait context, creating it on first use.
func (j *Job) WaitCtx() *WaitCtx {
	if j.wctx == nil {
		j.wctx = NewWaitCtx()
	}
	return j.wctx
}

// Finished reports whether the job function has returned.
func (j *Job) Finished() bool { return j.finished }

// Err returns the job function's error once finished.
func (j *Job) Err() error { return j.err }

// StartJob starts or resumes a fiber-based async job, mirroring
// ASYNC_start_job:
//
//   - With job == nil it creates a new job whose fiber runs fn(job); fn
//     receives its own *Job so nested code can pause it. (OpenSSL finds
//     the current job via thread-local state; Go has no goroutine-locals,
//     so the job is passed explicitly — the only API divergence.)
//   - With a previously paused job it ignores fn and resumes the fiber at
//     its pause point (fiber context swap).
//
// It returns StatusPause together with the job when the fiber paused, and
// StatusFinish with the job function's error when it ran to completion.
func StartJob(job *Job, fn func(*Job) error) (Status, *Job, error) {
	if job == nil {
		job = &Job{
			resume: make(chan struct{}),
			yield:  make(chan yieldMsg),
		}
	}
	if job.finished {
		return StatusErr, job, ErrJobFinished
	}
	if !job.started {
		if fn == nil {
			return StatusErr, job, errors.New("asynclib: StartJob with nil function")
		}
		job.started = true
		jobStats.started.Add(1)
		go func() {
			err := fn(job)
			job.yield <- yieldMsg{finished: true, err: err}
		}()
	} else {
		// Context swap into the paused fiber.
		jobStats.resumed.Add(1)
		job.resume <- struct{}{}
	}
	msg := <-job.yield
	if msg.finished {
		job.finished = true
		job.err = msg.err
		jobStats.finished.Add(1)
		return StatusFinish, job, msg.err
	}
	return StatusPause, job, nil
}

// Pause suspends the calling fiber and returns control to the goroutine
// that invoked StartJob (ASYNC_pause_job). It must be called from within
// the job function; calling it on a nil job returns ErrNotInJob. It
// returns when the job is resumed.
func (j *Job) Pause() error {
	if j == nil {
		return ErrNotInJob
	}
	jobStats.paused.Add(1)
	j.yield <- yieldMsg{}
	<-j.resume
	return nil
}
