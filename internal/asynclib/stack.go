package asynclib

import "fmt"

// StackState is the state flag of the paper's original "stack async"
// implementation (Fig. 5). Instead of swapping fiber contexts, the crypto
// API alters its normal execution sequence according to this flag:
//
//	StackIdle     -> first call: submit the crypto request.
//	StackInflight -> submitted; the TLS API returns a pause indication and
//	                 the application re-invokes it later.
//	StackReady    -> the QAT response was retrieved; the re-invoked crypto
//	                 API jumps over the submission and consumes the result.
//	StackRetry    -> the submission failed (ring full); the re-invoked
//	                 crypto API retries the submission.
//
// The stack-async approach performs slightly better than fiber async (no
// fiber management or context swaps) but is intrusive: the TLS API must
// carefully skip already-completed operations on re-entry. The engine and
// minitls layers in this repository support both modes; see
// minitls.AsyncModeStack.
type StackState int32

const (
	// StackIdle means no async operation is outstanding.
	StackIdle StackState = iota
	// StackInflight means a crypto request has been submitted and its
	// response has not been retrieved yet.
	StackInflight
	// StackReady means the response has been retrieved and the result can
	// be consumed by re-entering the paused operation.
	StackReady
	// StackRetry means the submission failed and must be retried.
	StackRetry
)

// String returns the state name.
func (s StackState) String() string {
	switch s {
	case StackIdle:
		return "idle"
	case StackInflight:
		return "inflight"
	case StackReady:
		return "ready"
	case StackRetry:
		return "retry"
	default:
		return fmt.Sprintf("StackState(%d)", int32(s))
	}
}

// StackOp tracks one stack-async crypto operation: the state flag plus the
// retrieved result. It is manipulated from the worker goroutine only
// (submission, consumption) except MarkReady, which the QAT response
// callback invokes from the polling goroutine — in QTLS both run on the
// same worker thread, and this package preserves that single-owner model.
type StackOp struct {
	state  StackState
	result any
	err    error
	wctx   *WaitCtx
}

// State returns the current state flag.
func (o *StackOp) State() StackState { return o.state }

// WaitCtx returns the operation's wait context, creating it on first use.
func (o *StackOp) WaitCtx() *WaitCtx {
	if o.wctx == nil {
		o.wctx = NewWaitCtx()
	}
	return o.wctx
}

// MarkInflight transitions idle/retry -> inflight after a successful
// submission. It panics on an invalid transition: that is a stack-async
// sequencing bug.
func (o *StackOp) MarkInflight() {
	if o.state != StackIdle && o.state != StackRetry {
		panic("asynclib: MarkInflight from state " + o.state.String())
	}
	o.state = StackInflight
}

// MarkRetry transitions idle/retry -> retry after a failed submission.
func (o *StackOp) MarkRetry() {
	if o.state != StackIdle && o.state != StackRetry {
		panic("asynclib: MarkRetry from state " + o.state.String())
	}
	o.state = StackRetry
}

// MarkReady records the crypto result and transitions inflight -> ready.
// The QAT response callback calls this when the response is retrieved.
func (o *StackOp) MarkReady(result any, err error) {
	if o.state != StackInflight {
		panic("asynclib: MarkReady from state " + o.state.String())
	}
	o.result = result
	o.err = err
	o.state = StackReady
}

// Consume returns the result and resets the operation to idle. It panics
// unless the state is ready.
func (o *StackOp) Consume() (any, error) {
	if o.state != StackReady {
		panic("asynclib: Consume from state " + o.state.String())
	}
	res, err := o.result, o.err
	o.result, o.err = nil, nil
	o.state = StackIdle
	return res, err
}

// Reset unconditionally returns the operation to idle, dropping any
// result. Used when a connection is torn down mid-operation.
func (o *StackOp) Reset() {
	o.result, o.err = nil, nil
	o.state = StackIdle
}
